//! A hand-rolled Rust lexer sufficient for rule matching: it strips comments,
//! strings and char literals out of the token stream (recording comments *and*
//! string literals on the side, because several rules key on them — e.g. the
//! lock-poisoning rule inspects `expect("...")` messages), distinguishes char
//! literals from lifetimes, tracks brace depth, and marks which tokens sit inside
//! test scopes (`#[cfg(test)]` items, `mod tests`, `#[test]` functions, files
//! under `tests/`).
//!
//! It is *not* a parser: rules match on spanned token patterns, which is exactly
//! the right altitude for convention checks ("no `partial_cmp().unwrap()`",
//! "every `Ordering::` site carries a justification") and keeps the linter
//! dependency-free and total — any byte sequence lexes to *something*.

/// Token classification. Punctuation is stored with maximal munch (`::`, `+=`,
/// `..=`, …) so rules can match operator shapes directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Lifetime,
    Punct,
}

#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
    /// Brace depth surrounding the token: a `{` carries the depth *outside* the
    /// braces it opens, and its matching `}` carries that same depth.
    pub depth: u32,
    /// True inside `#[cfg(test)]` / `mod tests` / `#[test]` scopes, and for every
    /// token of a file under a `tests/` directory.
    pub in_test: bool,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment, kept out of the token stream but recorded for the rules that
/// require them (`// SAFETY:`, `// ordering:`, `// lint:allow(...)`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (> `line` only for block comments).
    pub end_line: u32,
    /// Body text without the `//` / `/* */` markers.
    pub text: String,
    /// `///`, `//!`, `/**`, `/*!`.
    pub doc: bool,
    /// True when a token precedes the comment on its starting line.
    pub trailing: bool,
}

/// A string literal, kept out of the token stream but recorded for rules that
/// inspect message text (`expect("... poisoned ...")`).
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line the literal starts on.
    pub line: u32,
    /// 1-based column of the opening quote (or prefix).
    pub col: u32,
    /// Body without quotes/prefix; escape sequences are kept verbatim.
    pub text: String,
}

/// One lexed source file.
#[derive(Debug)]
pub struct LexedFile {
    /// Repo-relative path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub strings: Vec<StrLit>,
    pub is_test_file: bool,
}

impl LexedFile {
    /// True when any token sits on `line`.
    pub fn line_has_code(&self, line: u32) -> bool {
        self.tokens
            .binary_search_by(|t| t.line.cmp(&line))
            .map_or_else(|_| false, |_| true)
    }

    /// All comments whose span covers `line`.
    pub fn comments_on_line(&self, line: u32) -> impl Iterator<Item = &Comment> {
        self.comments
            .iter()
            .filter(move |c| c.line <= line && line <= c.end_line)
    }
}

/// Lexes `text` into tokens + comments. `path` must be repo-relative with `/`
/// separators; it decides the `is_test_file` flag.
pub fn lex(path: &str, text: &str) -> LexedFile {
    let is_test_file = path.starts_with("tests/") || path.contains("/tests/");
    let chars: Vec<char> = text.chars().collect();
    let mut tokens: Vec<Token> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut strings: Vec<StrLit> = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    let mut depth: u32 = 0;
    let mut last_token_line: u32 = 0;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // ---- whitespace
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // ---- comments
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '/' {
            let doc = matches!(chars.get(i + 2), Some('/') | Some('!'))
                // `////...` dividers are plain comments, not docs.
                && chars.get(i + 3) != Some(&'/');
            let mut body = String::new();
            while i < chars.len() && chars[i] != '\n' {
                body.push(chars[i]);
                bump!();
            }
            let trimmed = body
                .trim_start_matches('/')
                .trim_start_matches('!')
                .to_string();
            comments.push(Comment {
                line: tline,
                end_line: tline,
                text: trimmed,
                doc,
                trailing: last_token_line == tline,
            });
            continue;
        }
        if c == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
            let doc =
                matches!(chars.get(i + 2), Some('*') | Some('!')) && chars.get(i + 3) != Some(&'/');
            let mut body = String::new();
            let mut nest = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    nest += 1;
                    bump!();
                    bump!();
                    continue;
                }
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    nest -= 1;
                    bump!();
                    bump!();
                    if nest == 0 {
                        break;
                    }
                    continue;
                }
                body.push(chars[i]);
                bump!();
            }
            comments.push(Comment {
                line: tline,
                end_line: line,
                text: body,
                doc,
                trailing: last_token_line == tline,
            });
            continue;
        }

        // ---- string-ish literals (stripped; they never yield tokens)
        // Raw strings r"..." / r#"..."# (and br variants), checked before idents.
        if (c == 'r' || c == 'b') && raw_string_hashes(&chars, i).is_some() {
            let (start, hashes) = raw_string_hashes(&chars, i).expect("checked above");
            // Skip prefix up to and including the opening quote.
            while i < start {
                bump!();
            }
            bump!(); // the opening `"`
            let mut body = String::new();
            loop {
                if i >= chars.len() {
                    break;
                }
                if chars[i] == '"' && closes_raw(&chars, i, hashes) {
                    bump!(); // `"`
                    for _ in 0..hashes {
                        bump!();
                    }
                    break;
                }
                body.push(chars[i]);
                bump!();
            }
            strings.push(StrLit {
                line: tline,
                col: tcol,
                text: body,
            });
            continue;
        }
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            let mut body = String::new();
            while i < chars.len() {
                if chars[i] == '\\' {
                    body.push(chars[i]);
                    bump!();
                    if i < chars.len() {
                        body.push(chars[i]);
                        bump!();
                    }
                    continue;
                }
                if chars[i] == '"' {
                    bump!();
                    break;
                }
                body.push(chars[i]);
                bump!();
            }
            strings.push(StrLit {
                line: tline,
                col: tcol,
                text: body,
            });
            continue;
        }
        // Char literal vs lifetime. `b'x'` is always a char literal.
        if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'')) {
            let q = if c == 'b' { i + 1 } else { i };
            let escaped = chars.get(q + 1) == Some(&'\\');
            let closes = chars.get(q + 2) == Some(&'\'');
            if c == 'b' || escaped || closes {
                // Char literal: skip to the closing quote.
                if c == 'b' {
                    bump!();
                }
                bump!(); // opening '
                while i < chars.len() {
                    if chars[i] == '\\' {
                        bump!();
                        if i < chars.len() {
                            bump!();
                        }
                        continue;
                    }
                    if chars[i] == '\'' {
                        bump!();
                        break;
                    }
                    bump!();
                }
            } else {
                // Lifetime: `'` + ident chars, no closing quote.
                bump!();
                let mut name = String::from("'");
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    name.push(chars[i]);
                    bump!();
                }
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text: name,
                    line: tline,
                    col: tcol,
                    depth,
                    in_test: false,
                });
                last_token_line = tline;
            }
            continue;
        }

        // ---- identifiers (incl. raw idents r#ident)
        if c.is_alphabetic() || c == '_' {
            let mut name = String::new();
            if c == 'r' && chars.get(i + 1) == Some(&'#') {
                let after = chars.get(i + 2);
                if after.is_some_and(|ch| ch.is_alphabetic() || *ch == '_') {
                    bump!();
                    bump!();
                }
            }
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                name.push(chars[i]);
                bump!();
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text: name,
                line: tline,
                col: tcol,
                depth,
                in_test: false,
            });
            last_token_line = tline;
            continue;
        }

        // ---- numbers
        if c.is_ascii_digit() {
            let mut text = String::new();
            if c == '0' && matches!(chars.get(i + 1), Some('x' | 'X' | 'b' | 'B' | 'o' | 'O')) {
                text.push(chars[i]);
                bump!();
                text.push(chars[i]);
                bump!();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                // Fractional part only when a digit follows the dot (so `0..n` and
                // `x.0.partial_cmp` keep their dots as punctuation).
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                {
                    text.push('.');
                    bump!();
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!();
                    }
                }
                // Exponent.
                if i < chars.len()
                    && matches!(chars[i], 'e' | 'E')
                    && (chars.get(i + 1).is_some_and(char::is_ascii_digit)
                        || (matches!(chars.get(i + 1), Some('+' | '-'))
                            && chars.get(i + 2).is_some_and(char::is_ascii_digit)))
                {
                    text.push(chars[i]);
                    bump!();
                    if matches!(chars[i], '+' | '-') {
                        text.push(chars[i]);
                        bump!();
                    }
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!();
                    }
                }
                // Type suffix (`1f32`, `7usize`).
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
            }
            tokens.push(Token {
                kind: TokKind::Number,
                text,
                line: tline,
                col: tcol,
                depth,
                in_test: false,
            });
            last_token_line = tline;
            continue;
        }

        // ---- punctuation (maximal munch)
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        let mut op_len = 1;
        for op in [
            "..=", "<<=", ">>=", "::", "->", "=>", "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
            "|=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
        ] {
            if rest.starts_with(op) {
                op_len = op.chars().count();
                break;
            }
        }
        let text: String = chars[i..i + op_len].iter().collect();
        let tok_depth = if text == "}" {
            depth.saturating_sub(1)
        } else {
            depth
        };
        if text == "{" {
            depth += 1;
        } else if text == "}" {
            depth = depth.saturating_sub(1);
        }
        for _ in 0..op_len {
            bump!();
        }
        tokens.push(Token {
            kind: TokKind::Punct,
            text,
            line: tline,
            col: tcol,
            depth: tok_depth,
            in_test: false,
        });
        last_token_line = tline;
    }

    mark_test_scopes(&mut tokens, is_test_file);
    LexedFile {
        path: path.to_string(),
        tokens,
        comments,
        strings,
        is_test_file,
    }
}

/// If position `i` starts a raw-string prefix (`r"`, `r#...#"`, `br"`, `br#"`),
/// returns (index of the opening quote, number of hashes).
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j, hashes))
    } else {
        None
    }
}

/// True when the quote at `i` is followed by `hashes` hash characters.
fn closes_raw(chars: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks tokens inside test scopes: items annotated `#[cfg(test)]` or `#[test]`,
/// and `mod tests { ... }` bodies. Test files mark everything.
fn mark_test_scopes(tokens: &mut [Token], is_test_file: bool) {
    if is_test_file {
        for t in tokens.iter_mut() {
            t.in_test = true;
        }
        return;
    }
    let n = tokens.len();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        // `#[cfg(test)]` / `#[test]` attribute.
        let attr_is_test = tokens[i].is_punct("#")
            && i + 2 < n
            && tokens[i + 1].is_punct("[")
            && ((tokens[i + 2].is_ident("cfg")
                && i + 4 < n
                && tokens[i + 3].is_punct("(")
                && tokens[i + 4].is_ident("test"))
                || tokens[i + 2].is_ident("test"));
        // `mod tests` (any module literally named `tests`).
        let mod_tests = tokens[i].is_ident("mod") && i + 1 < n && tokens[i + 1].is_ident("tests");
        if !(attr_is_test || mod_tests) {
            i += 1;
            continue;
        }
        let item_depth = tokens[i].depth;
        // Find the annotated item's body: the first `{` at `item_depth` before a
        // terminating `;` at `item_depth` (e.g. `#[cfg(test)] use ...;` has none).
        let mut j = i + 1;
        let mut start = None;
        while j < n && tokens[j].depth >= item_depth {
            if tokens[j].depth == item_depth {
                if tokens[j].is_punct("{") {
                    start = Some(j);
                    break;
                }
                if tokens[j].is_punct(";") {
                    break;
                }
            }
            j += 1;
        }
        if let Some(s) = start {
            let mut k = s + 1;
            while k < n && !(tokens[k].is_punct("}") && tokens[k].depth == item_depth) {
                k += 1;
            }
            regions.push((i, k.min(n - 1)));
            i = s + 1; // nested test scopes inside are already covered
        } else {
            i = j.max(i + 1);
        }
    }
    for (a, b) in regions {
        for t in tokens.iter_mut().take(b + 1).skip(a) {
            t.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex("x.rs", src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strips_comments_strings_and_chars() {
        let f = lex(
            "x.rs",
            "let s = \"partial_cmp\"; // partial_cmp\nlet c = 'u'; /* unsafe */ let l: &'a u8;",
        );
        let names: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["let", "s", "let", "c", "let", "l", "u8"]);
        assert_eq!(f.comments.len(), 2);
        assert!(f.comments[0].trailing);
        assert_eq!(f.comments[0].text.trim(), "partial_cmp");
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a"]);
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let f = lex(
            "x.rs",
            "let a = r#\"un\"safe\"#; /* outer /* inner */ still */ let b = r\"x\";",
        );
        assert_eq!(idents("let a = r#\"y\"#;"), vec!["let", "a"]);
        let names: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, vec!["let", "a", "let", "b"]);
        assert_eq!(f.comments.len(), 1);
    }

    #[test]
    fn tuple_field_access_keeps_method_name_separate() {
        // The motivating edge case: `a.0.partial_cmp(b)` must yield an ident token
        // `partial_cmp`, not a number token `0.partial_cmp`.
        assert!(idents("a.0.partial_cmp(&b.0)").contains(&"partial_cmp".to_string()));
        // And numeric literals still lex as one token.
        let f = lex("x.rs", "let x = 1.5e-3f64 + 0x1F + 2usize;");
        let nums: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3f64", "0x1F", "2usize"]);
    }

    #[test]
    fn brace_depth_tracks_matching_pairs() {
        let f = lex("x.rs", "fn f() { if x { y(); } }");
        let open: Vec<u32> = f
            .tokens
            .iter()
            .filter(|t| t.is_punct("{"))
            .map(|t| t.depth)
            .collect();
        let close: Vec<u32> = f
            .tokens
            .iter()
            .filter(|t| t.is_punct("}"))
            .map(|t| t.depth)
            .collect();
        assert_eq!(open, vec![0, 1]);
        assert_eq!(close, vec![1, 0]);
    }

    #[test]
    fn test_scopes_cover_cfg_test_and_mod_tests() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { spawn(); }\n}\n";
        let f = lex("x.rs", src);
        let spawn = f.tokens.iter().find(|t| t.is_ident("spawn")).unwrap();
        assert!(spawn.in_test);
        let live = f.tokens.iter().find(|t| t.is_ident("live")).unwrap();
        assert!(!live.in_test);
    }

    #[test]
    fn cfg_test_on_use_statement_does_not_swallow_the_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = lex("x.rs", src);
        let live = f.tokens.iter().find(|t| t.is_ident("live")).unwrap();
        assert!(!live.in_test);
    }

    #[test]
    fn tests_directory_files_are_all_test_scope() {
        let f = lex("tests/it.rs", "fn main() {}");
        assert!(f.is_test_file);
        assert!(f.tokens.iter().all(|t| t.in_test));
    }
}
