//! Minimal `Cargo.toml` reader — just enough structure for the `layering` rule:
//! the package name plus the dependency names declared in `[dependencies]`,
//! `[dev-dependencies]` and `[build-dependencies]`.
//!
//! Hand-rolled on purpose: the linter is zero-dependency, and the workspace's
//! manifests are plain `key = value` / `key.workspace = true` tables (no inline
//! multi-table exotica), so a line-oriented scan is faithful.

/// One dependency edge as declared in a manifest section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
    pub dev: bool,
}

#[derive(Debug, Clone)]
pub struct Manifest {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// `[package] name`, empty for a virtual manifest.
    pub package: String,
    pub deps: Vec<Dep>,
}

/// Parses manifest text. Unknown sections are ignored.
pub fn parse(path: &str, text: &str) -> Manifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps { dev: bool },
        Other,
    }
    let mut section = Section::Other;
    let mut package = String::new();
    let mut deps = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            // Strip any trailing comment, then match the table header exactly.
            let header = line.split('#').next().unwrap_or("").trim();
            section = match header {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps { dev: false },
                "[dev-dependencies]" => Section::Deps { dev: true },
                "[build-dependencies]" => Section::Deps { dev: false },
                _ => Section::Other,
            };
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        match section {
            Section::Package if key == "name" => {
                package = line[eq + 1..].trim().trim_matches('"').to_string();
            }
            Section::Deps { dev } => {
                // `serde.workspace = true` and `serde = { ... }` both name `serde`.
                let name = key.split('.').next().unwrap_or(key).trim().to_string();
                if !name.is_empty() {
                    deps.push(Dep {
                        name,
                        line: (i + 1) as u32,
                        dev,
                    });
                }
            }
            _ => {}
        }
    }
    Manifest {
        path: path.to_string(),
        package,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_package_and_sections() {
        let m = parse(
            "crates/x/Cargo.toml",
            "[package]\nname = \"usp-x\"\n\n[dependencies]\nusp-linalg.workspace = true\nrand = { path = \"../rand\" }\n\n[dev-dependencies]\nproptest.workspace = true\n\n[lints]\nworkspace = true\n",
        );
        assert_eq!(m.package, "usp-x");
        let names: Vec<(&str, bool)> = m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("usp-linalg", false), ("rand", false), ("proptest", true)]
        );
    }

    #[test]
    fn ignores_lints_workspace_key() {
        // `[lints] workspace = true` must not read as a dependency named `workspace`.
        let m = parse("x", "[lints]\nworkspace = true\n");
        assert!(m.deps.is_empty());
    }
}
