//! Clustering comparators and clustering-quality metrics (Table 5 of the paper).
//!
//! The paper closes its evaluation by using the learned partitioner as a *clustering*
//! method and comparing it, on the classic scikit-learn toy datasets, against DBSCAN,
//! K-means and spectral clustering. The paper's comparison is a picture grid; this
//! workspace reports the equivalent quantitative scores (Adjusted Rand Index, normalized
//! mutual information, purity) against the generative labels.
//!
//! * [`dbscan`] — density-based clustering (Ester et al., 1996);
//! * [`spectral`] — normalized-cut spectral clustering (Ng, Jordan & Weiss, 2001) with
//!   eigenvectors obtained by shifted power iteration;
//! * [`metrics`] — ARI, NMI and purity. (K-means itself lives in `usp-quant`.)

pub mod dbscan;
pub mod metrics;
pub mod spectral;

pub use dbscan::{dbscan, DbscanConfig, NOISE};
pub use metrics::{adjusted_rand_index, normalized_mutual_information, purity};
pub use spectral::{spectral_clustering, SpectralConfig};
