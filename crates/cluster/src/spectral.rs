//! Spectral clustering (Ng, Jordan & Weiss, 2001).
//!
//! The Table 5 comparator the paper singles out as matching its clustering quality but not
//! scaling: build a k-NN affinity graph, form the symmetric normalized adjacency
//! `M = D^{-1/2} W D^{-1/2}`, take its top `k` eigenvectors (equivalently the bottom
//! eigenvectors of the normalized Laplacian), row-normalise the spectral embedding, and
//! run k-means in that space. Eigenvectors come from a dense Jacobi eigendecomposition
//! (`usp_linalg::eigen`), which is robust to the nearly degenerate spectra these affinity
//! graphs have — and whose `O(n^3)` cost is exactly why spectral clustering does not scale
//! to the ANN-sized datasets the paper targets (§5.5).

use serde::{Deserialize, Serialize};
use usp_data::KnnMatrix;
use usp_linalg::{Distance, Matrix};
use usp_quant::{KMeans, KMeansConfig};

/// Spectral clustering parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpectralConfig {
    /// Number of clusters.
    pub k: usize,
    /// Neighbours per point in the affinity graph.
    pub n_neighbors: usize,
    /// Maximum Jacobi sweeps for the eigendecomposition.
    pub max_sweeps: usize,
    /// RNG seed (k-means on the spectral embedding).
    pub seed: u64,
}

impl SpectralConfig {
    /// A sensible default for 2-D toy datasets.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            n_neighbors: 10,
            max_sweeps: 20,
            seed: 42,
        }
    }
}

/// Runs spectral clustering over the rows of `data`, returning one label per point.
pub fn spectral_clustering(data: &Matrix, config: &SpectralConfig) -> Vec<usize> {
    let n = data.rows();
    assert!(
        n >= config.k,
        "spectral_clustering: fewer points than clusters"
    );

    // 1. k-NN affinity matrix (symmetrised, unit weights).
    let knn = KnnMatrix::build(
        data,
        config.n_neighbors.min(n - 1),
        Distance::SquaredEuclidean,
    );
    let mut w = vec![0.0f64; n * n];
    for (i, nbrs) in knn.iter() {
        for &j in nbrs {
            let j = j as usize;
            w[i * n + j] = 1.0;
            w[j * n + i] = 1.0;
        }
    }

    // 2. Symmetric normalisation M = D^-1/2 W D^-1/2.
    let degrees: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| w[i * n + j]).sum::<f64>().max(1e-12))
        .collect();
    for i in 0..n {
        for j in 0..n {
            w[i * n + j] /= (degrees[i] * degrees[j]).sqrt();
        }
    }

    // 3. Top-k eigenvectors of M via a dense Jacobi eigendecomposition.
    let eigen = usp_linalg::eigen::symmetric_eigen(&w, n, config.max_sweeps);
    let embedding: Vec<&Vec<f64>> = eigen.eigenvectors.iter().take(config.k).collect();

    // 4. Row-normalise and cluster with k-means.
    let mut rows: Vec<Vec<f32>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vec<f32> = (0..config.k.min(embedding.len()))
            .map(|c| embedding[c][i] as f32)
            .collect();
        let norm: f32 = row.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 1e-9 {
            row.iter_mut().for_each(|x| *x /= norm);
        }
        rows.push(row);
    }
    let spectral_points = Matrix::from_rows(&rows);
    let km = KMeans::fit(
        &spectral_points,
        &KMeansConfig {
            k: config.k,
            max_iters: 100,
            tol: 1e-5,
            seed: config.seed,
        },
    );
    km.assign_all(&spectral_points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{adjusted_rand_index, to_pred_labels};
    use usp_data::synthetic;

    #[test]
    fn clusters_two_blobs_perfectly() {
        let ds = synthetic::blobs(200, 2, 2, 0.4, 1);
        let labels = spectral_clustering(ds.points(), &SpectralConfig::new(2));
        let ari = adjusted_rand_index(&to_pred_labels(&labels), ds.labels().unwrap());
        assert!(ari > 0.95, "ARI on blobs {ari}");
    }

    #[test]
    fn recovers_non_convex_circles() {
        let ds = synthetic::circles(300, 0.03, 0.4, 2);
        let labels = spectral_clustering(ds.points(), &SpectralConfig::new(2));
        let ari = adjusted_rand_index(&to_pred_labels(&labels), ds.labels().unwrap());
        assert!(
            ari > 0.9,
            "ARI on circles {ari} — spectral clustering should separate the rings"
        );
    }

    #[test]
    fn recovers_moons() {
        let ds = synthetic::moons(300, 0.05, 3);
        let labels = spectral_clustering(ds.points(), &SpectralConfig::new(2));
        let ari = adjusted_rand_index(&to_pred_labels(&labels), ds.labels().unwrap());
        assert!(ari > 0.85, "ARI on moons {ari}");
    }

    #[test]
    fn label_range_and_count() {
        let ds = synthetic::blobs(90, 2, 3, 0.3, 4);
        let labels = spectral_clustering(ds.points(), &SpectralConfig::new(3));
        assert_eq!(labels.len(), 90);
        assert!(labels.iter().all(|&l| l < 3));
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    #[should_panic]
    fn more_clusters_than_points_panics() {
        let ds = synthetic::blobs(3, 2, 2, 0.3, 5);
        let _ = spectral_clustering(ds.points(), &SpectralConfig::new(10));
    }
}
