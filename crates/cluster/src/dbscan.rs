//! DBSCAN (Ester, Kriegel, Sander & Xu, 1996).
//!
//! Density-based clustering: core points have at least `min_points` neighbours within
//! `eps`; clusters are the connected components of core points plus their border points;
//! everything else is noise. Used as a Table 5 comparator — it handles the moons/circles
//! shapes K-means cannot, but needs per-dataset `eps` tuning and does not scale to the
//! high-dimensional ANN workloads the paper targets.

use serde::{Deserialize, Serialize};
use usp_linalg::{distance, Matrix};

/// Label assigned to noise points.
pub const NOISE: isize = -1;

/// DBSCAN parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DbscanConfig {
    /// Neighbourhood radius.
    pub eps: f32,
    /// Minimum neighbourhood size (including the point itself) for a core point.
    pub min_points: usize,
}

impl DbscanConfig {
    /// Creates a configuration.
    pub fn new(eps: f32, min_points: usize) -> Self {
        assert!(eps > 0.0 && min_points >= 1);
        Self { eps, min_points }
    }
}

/// Runs DBSCAN over the rows of `data`. Returns one label per point: `0..k` for cluster
/// members, [`NOISE`] (`-1`) for noise points.
pub fn dbscan(data: &Matrix, config: &DbscanConfig) -> Vec<isize> {
    let n = data.rows();
    let eps_sq = config.eps * config.eps;
    let neighbourhoods: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| distance::squared_euclidean(data.row(i), data.row(j)) <= eps_sq)
                .collect()
        })
        .collect();

    let mut labels = vec![isize::MIN; n]; // MIN = unvisited
    let mut cluster = 0isize;
    for i in 0..n {
        if labels[i] != isize::MIN {
            continue;
        }
        if neighbourhoods[i].len() < config.min_points {
            labels[i] = NOISE;
            continue;
        }
        // Start a new cluster and expand it breadth-first over density-reachable points.
        labels[i] = cluster;
        let mut queue: std::collections::VecDeque<usize> =
            neighbourhoods[i].iter().copied().collect();
        while let Some(j) = queue.pop_front() {
            if labels[j] == NOISE {
                labels[j] = cluster; // border point
            }
            if labels[j] != isize::MIN {
                continue;
            }
            labels[j] = cluster;
            if neighbourhoods[j].len() >= config.min_points {
                queue.extend(neighbourhoods[j].iter().copied());
            }
        }
        cluster += 1;
    }
    labels
}

/// Number of clusters found (noise excluded).
pub fn num_clusters(labels: &[isize]) -> usize {
    labels
        .iter()
        .filter(|&&l| l >= 0)
        .map(|&l| l as usize)
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usp_data::synthetic;

    #[test]
    fn separates_two_dense_blobs() {
        let ds = synthetic::blobs(200, 2, 2, 0.3, 1);
        let labels = dbscan(ds.points(), &DbscanConfig::new(1.0, 4));
        assert_eq!(num_clusters(&labels), 2);
        // Every point in the same generative cluster shares a DBSCAN label (no split).
        let truth = ds.labels().unwrap();
        for c in 0..2 {
            let found: std::collections::HashSet<isize> = truth
                .iter()
                .zip(&labels)
                .filter(|(&t, &l)| t == c && l >= 0)
                .map(|(_, &l)| l)
                .collect();
            assert_eq!(
                found.len(),
                1,
                "generative cluster {c} split into {found:?}"
            );
        }
    }

    #[test]
    fn finds_non_convex_moons() {
        let ds = synthetic::moons(300, 0.05, 2);
        let labels = dbscan(ds.points(), &DbscanConfig::new(0.2, 4));
        assert_eq!(
            num_clusters(&labels),
            2,
            "moons should form exactly two clusters"
        );
        let noise = labels.iter().filter(|&&l| l == NOISE).count();
        assert!(noise < 15, "too much noise: {noise}");
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut rows = vec![vec![0.0f32, 0.0]; 10];
        for (i, r) in rows.iter_mut().enumerate() {
            r[0] = i as f32 * 0.01;
        }
        rows.push(vec![100.0, 100.0]); // far away singleton
        let data = Matrix::from_rows(&rows);
        let labels = dbscan(&data, &DbscanConfig::new(0.5, 3));
        assert_eq!(labels[10], NOISE);
        assert!(labels[..10].iter().all(|&l| l == 0));
    }

    #[test]
    fn eps_too_small_marks_everything_noise() {
        let ds = synthetic::blobs(50, 2, 2, 1.0, 3);
        let labels = dbscan(ds.points(), &DbscanConfig::new(1e-6, 3));
        assert!(labels.iter().all(|&l| l == NOISE));
        assert_eq!(num_clusters(&labels), 0);
    }

    #[test]
    #[should_panic]
    fn invalid_config_panics() {
        let _ = DbscanConfig::new(0.0, 3);
    }
}
