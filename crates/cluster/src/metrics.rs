//! External clustering-quality metrics.
//!
//! Table 5 of the paper shows clusterings visually; the quantitative equivalents reported
//! by this workspace are the standard external metrics against the generative labels:
//! Adjusted Rand Index, normalized mutual information, and purity. Predicted labels are
//! `isize` so DBSCAN's noise label (`-1`) can participate (noise is treated as its own
//! cluster, which penalises excessive noise).

use std::collections::HashMap;

/// Contingency table between predicted and true labels.
fn contingency(
    pred: &[isize],
    truth: &[usize],
) -> (
    HashMap<(isize, usize), usize>,
    HashMap<isize, usize>,
    HashMap<usize, usize>,
) {
    assert_eq!(pred.len(), truth.len(), "metrics: label length mismatch");
    let mut joint = HashMap::new();
    let mut pred_counts = HashMap::new();
    let mut true_counts = HashMap::new();
    for (&p, &t) in pred.iter().zip(truth) {
        *joint.entry((p, t)).or_insert(0) += 1;
        *pred_counts.entry(p).or_insert(0) += 1;
        *true_counts.entry(t).or_insert(0) += 1;
    }
    (joint, pred_counts, true_counts)
}

fn choose2(x: usize) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index in `[-1, 1]`; 1 = identical clusterings, ~0 = random agreement.
pub fn adjusted_rand_index(pred: &[isize], truth: &[usize]) -> f64 {
    let n = pred.len();
    if n <= 1 {
        return 1.0;
    }
    let (joint, pred_counts, true_counts) = contingency(pred, truth);
    let sum_joint: f64 = joint.values().map(|&c| choose2(c)).sum();
    let sum_pred: f64 = pred_counts.values().map(|&c| choose2(c)).sum();
    let sum_true: f64 = true_counts.values().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_pred * sum_true / total;
    let max_index = 0.5 * (sum_pred + sum_true);
    if (max_index - expected).abs() < 1e-12 {
        return 1.0;
    }
    (sum_joint - expected) / (max_index - expected)
}

/// Normalized mutual information (arithmetic-mean normalisation) in `[0, 1]`.
pub fn normalized_mutual_information(pred: &[isize], truth: &[usize]) -> f64 {
    let n = pred.len() as f64;
    if pred.is_empty() {
        return 1.0;
    }
    let (joint, pred_counts, true_counts) = contingency(pred, truth);
    let mut mi = 0.0f64;
    for (&(p, t), &c) in &joint {
        let pxy = c as f64 / n;
        let px = pred_counts[&p] as f64 / n;
        let py = true_counts[&t] as f64 / n;
        if pxy > 0.0 {
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    let h_pred: f64 = pred_counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    let h_true: f64 = true_counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum();
    let denom = 0.5 * (h_pred + h_true);
    if denom < 1e-12 {
        return 1.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

/// Purity in `[0, 1]`: each predicted cluster is credited with its majority true class.
pub fn purity(pred: &[isize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 1.0;
    }
    let (joint, pred_counts, _) = contingency(pred, truth);
    let mut correct = 0usize;
    for &p in pred_counts.keys() {
        let best = joint
            .iter()
            .filter(|((pp, _), _)| *pp == p)
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0);
        correct += best;
    }
    correct as f64 / pred.len() as f64
}

/// Convenience: converts `usize` predictions (e.g. partitioner bins) into the `isize`
/// labels these metrics accept.
pub fn to_pred_labels(labels: &[usize]) -> Vec<isize> {
    labels.iter().map(|&l| l as isize).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let truth = vec![0usize, 0, 1, 1, 2, 2];
        let pred = vec![5isize, 5, 7, 7, 9, 9]; // same partition, different label names
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-9);
        assert!((normalized_mutual_information(&pred, &truth) - 1.0).abs() < 1e-9);
        assert!((purity(&pred, &truth) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_cluster_prediction_scores_low() {
        let truth = vec![0usize, 0, 0, 1, 1, 1];
        let pred = vec![0isize; 6];
        assert!(adjusted_rand_index(&pred, &truth).abs() < 1e-9);
        assert!(normalized_mutual_information(&pred, &truth) < 1e-9);
        assert!((purity(&pred, &truth) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn random_like_disagreement_scores_near_zero_ari() {
        let truth = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
        let pred = vec![0isize, 0, 1, 1, 0, 0, 1, 1];
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari.abs() < 0.3, "ARI {ari}");
    }

    #[test]
    fn splitting_one_true_cluster_keeps_purity_but_lowers_ari() {
        let truth = vec![0usize, 0, 0, 0, 1, 1, 1, 1];
        let pred = vec![0isize, 0, 2, 2, 1, 1, 1, 1]; // first class split in two
        assert!((purity(&pred, &truth) - 1.0).abs() < 1e-9);
        assert!(adjusted_rand_index(&pred, &truth) < 1.0);
        assert!(normalized_mutual_information(&pred, &truth) < 1.0);
    }

    #[test]
    fn noise_labels_penalise_scores() {
        let truth = vec![0usize, 0, 0, 1, 1, 1];
        let clean = vec![0isize, 0, 0, 1, 1, 1];
        let noisy = vec![0isize, 0, -1, 1, 1, -1];
        assert!(adjusted_rand_index(&noisy, &truth) < adjusted_rand_index(&clean, &truth));
    }

    #[test]
    fn metric_ranges() {
        let truth = vec![0usize, 1, 2, 0, 1, 2, 0, 1, 2];
        let pred = vec![2isize, 0, 0, 1, 1, 2, 2, 0, 1];
        let ari = adjusted_rand_index(&pred, &truth);
        let nmi = normalized_mutual_information(&pred, &truth);
        let pur = purity(&pred, &truth);
        assert!((-1.0..=1.0).contains(&ari));
        assert!((0.0..=1.0).contains(&nmi));
        assert!((0.0..=1.0).contains(&pur));
    }

    #[test]
    fn to_pred_labels_roundtrip() {
        assert_eq!(to_pred_labels(&[0, 3, 2]), vec![0isize, 3, 2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn metrics_stay_in_range(labels in prop::collection::vec((0usize..5, 0usize..5), 2..60)) {
            let truth: Vec<usize> = labels.iter().map(|&(t, _)| t).collect();
            let pred: Vec<isize> = labels.iter().map(|&(_, p)| p as isize).collect();
            let ari = adjusted_rand_index(&pred, &truth);
            let nmi = normalized_mutual_information(&pred, &truth);
            let pur = purity(&pred, &truth);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ari));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi));
            prop_assert!((0.0..=1.0 + 1e-9).contains(&pur));
        }

        #[test]
        fn identical_labelings_score_one(truth in prop::collection::vec(0usize..4, 2..40)) {
            let pred: Vec<isize> = truth.iter().map(|&t| t as isize).collect();
            prop_assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-9);
            prop_assert!((purity(&pred, &truth) - 1.0).abs() < 1e-9);
        }
    }
}
