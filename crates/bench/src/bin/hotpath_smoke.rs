//! Hot-path smoke benchmark: cache-resident candidate scanning vs the gather baseline.
//!
//! Three measurements over the same K-means partition index (workload matched to
//! `serve_smoke`/`shard_smoke` so the reports are comparable):
//!
//! 1. **Kernel throughput** — one query streamed over the whole base set, scored by
//!    the scalar `Distance::eval` loop vs the blocked multi-accumulator
//!    `kernel::scan_block`, both fused into the same bounded-heap top-k. Pure
//!    single-thread compute, the ratio CI gates via `USP_ASSERT_HOTPATH_SPEEDUP`.
//! 2. **Candidate scan** — the per-query online phase as the seed implemented it
//!    (probe → gather each candidate row by id → scalar eval) vs the CSR path
//!    (`PartitionIndex::search`: contiguous bin slices through the blocked kernel).
//! 3. **End-to-end batched QPS** — `QueryEngine::serve_batch` over the query stream
//!    (batched bin ranking + pooled contiguous scans), with answers asserted
//!    bit-identical to per-query `PartitionIndex::search`.
//!
//! Results land in `BENCH_hotpath.json`. CI runs this in release mode under
//! `USP_NUM_THREADS=4` with `USP_ASSERT_HOTPATH_SPEEDUP=1.0`: the blocked kernel must
//! never lose to the scalar loop it replaced.

use std::sync::Arc;
use std::time::Instant;

use usp_baselines::KMeansPartitioner;
use usp_data::synthetic;
use usp_index::PartitionIndex;
use usp_linalg::{kernel, topk::TopK, Distance};
use usp_serve::{QueryEngine, QueryOptions};

const DIST: Distance = Distance::SquaredEuclidean;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let (n, dim, n_queries, bins, probes, k) = (10_000usize, 24usize, 1_000usize, 32, 8, 10);
    let split = synthetic::sift_like(n + n_queries, dim, 7).split_queries(n_queries);
    let data = split.base.points();
    let queries = &split.queries;

    let partitioner = KMeansPartitioner::fit(data, bins, 11);
    let index = Arc::new(PartitionIndex::build(partitioner, data, DIST));
    let reps = 5;

    // --- 1. kernel micro: scalar eval loop vs blocked scan over the full base set ----
    let kernel_queries = 20usize;
    let flat = data.as_slice();
    let scalar_ms = best_ms(reps, || {
        for qi in 0..kernel_queries {
            let q = queries.row(qi);
            let mut top = TopK::new(k);
            for (i, row) in flat.chunks_exact(dim).enumerate() {
                top.push(i, DIST.eval(q, row));
            }
            std::hint::black_box(top.into_sorted());
        }
    });
    let blocked_ms = best_ms(reps, || {
        for qi in 0..kernel_queries {
            let q = queries.row(qi);
            let mut top = TopK::new(k);
            kernel::scan_block(DIST, q, flat, dim, 0, &mut top);
            std::hint::black_box(top.into_sorted());
        }
    });
    let scanned_rows = (kernel_queries * n) as f64;
    let scalar_mrows = scanned_rows / (scalar_ms / 1e3) / 1e6;
    let blocked_mrows = scanned_rows / (blocked_ms / 1e3) / 1e6;
    let kernel_speedup = blocked_mrows / scalar_mrows;
    eprintln!(
        "hotpath: kernel scalar {scalar_mrows:.1} Mrows/s, blocked {blocked_mrows:.1} Mrows/s \
         ({kernel_speedup:.2}x)"
    );

    // --- 2. per-query candidate scan: id gather + scalar eval vs contiguous CSR ------
    let gather_ms = best_ms(reps, || {
        for qi in 0..n_queries {
            let q = queries.row(qi);
            // The seed's online phase: concatenate candidate ids in bin-rank order,
            // then fetch every row from the row-major dataset by id.
            let (_, candidates) = index.probe(q, probes);
            let mut top = TopK::new(k);
            for (i, &id) in candidates.iter().enumerate() {
                top.push(i, DIST.eval(q, data.row(id as usize)));
            }
            std::hint::black_box(top.into_sorted());
        }
    });
    let contiguous_ms = best_ms(reps, || {
        for qi in 0..n_queries {
            std::hint::black_box(index.search(queries.row(qi), k, probes));
        }
    });
    let gather_qps = n_queries as f64 / (gather_ms / 1e3);
    let contiguous_qps = n_queries as f64 / (contiguous_ms / 1e3);
    let scan_speedup = contiguous_qps / gather_qps;
    eprintln!(
        "hotpath: scan gather {gather_qps:.0} qps, contiguous {contiguous_qps:.0} qps \
         ({scan_speedup:.2}x, single query stream)"
    );

    // --- 3. end-to-end batched serving over the blocked path -------------------------
    let engine = QueryEngine::new(Arc::clone(&index));
    engine.warm_up();
    let opts = QueryOptions::new(k, probes);
    let mut batched_out = Vec::new();
    let batched_ms = best_ms(reps, || {
        batched_out = engine.serve_batch(queries, &opts);
    });
    for qi in 0..n_queries {
        assert_eq!(
            batched_out[qi],
            index.search(queries.row(qi), k, probes),
            "batched serving must stay bit-identical to the Searcher path (query {qi})"
        );
    }
    let batched_qps = n_queries as f64 / (batched_ms / 1e3);
    let stats = engine.stats();
    eprintln!("hotpath: batched {batched_qps:.0} qps on {threads} threads ({host_cpus} host cpus)");

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{n_queries} queries x {n} base x {dim}d, {bins} bins, probes={probes}, k={k}\",\n  \
         \"kernel\": {{ \"scalar_mrows_per_s\": {scalar_mrows:.2}, \"blocked_mrows_per_s\": {blocked_mrows:.2}, \"speedup\": {kernel_speedup:.3} }},\n  \
         \"scan\": {{ \"gather_qps\": {gather_qps:.1}, \"contiguous_qps\": {contiguous_qps:.1}, \"speedup\": {scan_speedup:.3} }},\n  \
         \"batched\": {{ \"total_ms\": {batched_ms:.3}, \"qps\": {batched_qps:.1}, \"p50_latency_us\": {p50}, \"p99_latency_us\": {p99} }},\n  \
         \"note\": \"kernel = one query against all {n} rows (single-thread); scan = sequential query stream, \
         gather replays the seed's id-gather + scalar-eval path; batched answers asserted bit-identical to \
         per-query search\"\n}}\n",
        p50 = stats.p50_latency_us,
        p99 = stats.p99_latency_us,
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    print!("{json}");

    // Regression gate (CI sets USP_ASSERT_HOTPATH_SPEEDUP=1.0): blocked candidate
    // scoring must not lose to the scalar loop it replaced. Single-threaded compute,
    // so no core-count precondition like the serving gates.
    if let Ok(min) = std::env::var("USP_ASSERT_HOTPATH_SPEEDUP") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_HOTPATH_SPEEDUP must be a number");
        assert!(
            kernel_speedup >= min,
            "blocked kernel speedup {kernel_speedup:.2}x is below the required {min}x"
        );
        eprintln!("hotpath kernel speedup assertion passed (>= {min}x)");
    }
}
