//! Sharded-serving smoke benchmark: scatter/gather vs the monolithic engine.
//!
//! Builds a K-means partition index, answers the same query stream through the
//! unsharded `QueryEngine` and through `ShardedEngine`s for shard counts {1, 2, 4, 7}
//! (uniform maps), asserts every sharded answer is bit-identical to the unsharded one,
//! then times the load-aware configuration (a `ShardMap` packed from the monolith's
//! recorded per-bin probe counts) and records both throughputs into
//! `BENCH_shard.json`. CI runs this in release mode with `USP_NUM_THREADS=4` and
//! `USP_ASSERT_SHARD_SPEEDUP=1.0` (sharded serving must never lose to the monolith
//! when the host has a core per pool thread; on a 1-core container the recorded
//! speedup is ~1.0 and the gate is skipped).

use std::sync::Arc;
use std::time::Instant;

use usp_baselines::KMeansPartitioner;
use usp_data::synthetic;
use usp_index::{PartitionIndex, SearchResult};
use usp_linalg::Distance;
use usp_serve::{QueryEngine, QueryOptions, ShardMap, ShardedEngine};

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Workload: 10k base points, 1k queries, 32 bins, probe 8, k = 10 (matches
    // serve_smoke so the two reports are comparable).
    let (n, dim, n_queries, bins, probes, k) = (10_000, 24, 1_000, 32, 8, 10);
    let split = synthetic::sift_like(n + n_queries, dim, 7).split_queries(n_queries);
    let data = split.base.points();
    let queries = &split.queries;

    let partitioner = KMeansPartitioner::fit(data, bins, 11);
    let index = Arc::new(PartitionIndex::build(
        partitioner,
        data,
        Distance::SquaredEuclidean,
    ));
    let opts = QueryOptions::new(k, probes);
    let reps = 3;

    // --- monolith (the serve_smoke batched path) ------------------------------------
    let monolith = QueryEngine::new(Arc::clone(&index));
    monolith.warm_up();
    let mut mono_ms = f64::INFINITY;
    let mut mono_out: Vec<SearchResult> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = monolith.serve_batch(queries, &opts);
        mono_ms = mono_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        mono_out = out;
    }

    // --- equivalence sweep: every shard count must answer identically ---------------
    for shards in [1usize, 2, 4, 7] {
        let engine = ShardedEngine::with_shards(Arc::clone(&index), shards);
        let out = engine.serve_batch(queries, &opts);
        assert_eq!(
            mono_out, out,
            "sharded serving ({shards} shards) must return exactly the monolith's answers"
        );
    }
    eprintln!("shard: equivalence verified for shard counts 1/2/4/7");

    // --- timed run: load-aware 4-shard map packed from the monolith's stats ---------
    let num_shards = 4;
    let map = ShardMap::from_loads(&monolith.stats().bin_probes, num_shards);
    let shard_loads = map.shard_loads().to_vec();
    let sharded = ShardedEngine::new(Arc::clone(&index), map);
    sharded.warm_up();
    let mut shard_ms = f64::INFINITY;
    let mut shard_out: Vec<SearchResult> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = sharded.serve_batch(queries, &opts);
        shard_ms = shard_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        shard_out = out;
    }
    assert_eq!(
        mono_out, shard_out,
        "load-aware sharded serving must return exactly the monolith's answers"
    );

    let stats = sharded.stats();
    let mono_qps = n_queries as f64 / (mono_ms / 1e3);
    let shard_qps = n_queries as f64 / (shard_ms / 1e3);
    let speedup = shard_qps / mono_qps;
    let points = sharded.shard_point_counts();

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{n_queries} queries x {n} base x {dim}d, {bins} bins, probes={probes}, k={k}\",\n  \
         \"shards\": {num_shards},\n  \
         \"shard_loads\": {shard_loads:?},\n  \"shard_points\": {points:?},\n  \
         \"unsharded\": {{ \"total_ms\": {mono_ms:.3}, \"qps\": {mono_qps:.1} }},\n  \
         \"sharded\": {{ \"total_ms\": {shard_ms:.3}, \"qps\": {shard_qps:.1} }},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"p50_latency_us\": {p50},\n  \"p99_latency_us\": {p99},\n  \
         \"note\": \"answers asserted bit-identical to the monolith for shard counts 1/2/4/7; \
         speedup = sharded qps / unsharded qps, meaningful only when host_cpus >= pool_threads\"\n}}\n",
        p50 = stats.p50_latency_us,
        p99 = stats.p99_latency_us,
    );
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    print!("{json}");
    eprintln!(
        "shard: unsharded {mono_qps:.0} qps, sharded({num_shards}) {shard_qps:.0} qps \
         ({speedup:.2}x) on {threads} threads ({host_cpus} host cpus)"
    );

    // Regression gate (CI sets USP_ASSERT_SHARD_SPEEDUP=1.0): the scatter/gather path
    // must not lose to the monolith when the host can actually back the pool.
    if let Ok(min) = std::env::var("USP_ASSERT_SHARD_SPEEDUP") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_SHARD_SPEEDUP must be a number");
        if threads >= 2 && host_cpus >= threads {
            assert!(
                speedup >= min,
                "sharded serving speedup {speedup:.2}x is below the required {min}x \
                 on {threads} threads"
            );
            eprintln!("shard speedup assertion passed (>= {min}x)");
        } else {
            eprintln!(
                "skipping shard speedup assertion: {host_cpus} host cpus cannot back \
                 {threads} threads"
            );
        }
    }
}
