//! Parallel-vs-sequential smoke benchmark for the rayon shim's chunk executor.
//!
//! Times the two headline hot paths — dense matmul and exact-kNN ground truth — once
//! with the pool forced to a single thread and once with the configured pool
//! (`USP_NUM_THREADS` / `available_parallelism`), verifies the outputs are bit-identical,
//! and records the wall-clock speedup into `BENCH_parallel.json`. CI runs this in
//! release mode with `USP_NUM_THREADS=4`; the recorded `host_cpus` field gives the
//! context needed to interpret the speedup (forcing 4 threads on a 1-core container
//! measures overhead, not speedup).

use std::time::Instant;

use usp_data::exact_knn;
use usp_linalg::{rng as lrng, Distance, Matrix};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = lrng::seeded(seed);
    let data = (0..rows * cols)
        .map(|_| lrng::standard_normal(&mut rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Best-of-`reps` wall-clock milliseconds for `f`, plus the last result for
/// equivalence checking.
fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

struct Record {
    name: &'static str,
    workload: String,
    sequential_ms: f64,
    parallel_ms: f64,
}

impl Record {
    fn speedup(&self) -> f64 {
        self.sequential_ms / self.parallel_ms
    }
}

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let reps = 3;

    // --- matmul ------------------------------------------------------------
    let a = random_matrix(512, 384, 1);
    let b = random_matrix(384, 512, 2);
    let (seq_ms, seq_out) = rayon::with_num_threads(1, || time_best_of(reps, || a.matmul(&b)));
    let (par_ms, par_out) =
        rayon::with_num_threads(threads, || time_best_of(reps, || a.matmul(&b)));
    assert_eq!(
        seq_out.as_slice(),
        par_out.as_slice(),
        "matmul outputs must be bit-identical across thread counts"
    );
    let matmul = Record {
        name: "matmul",
        workload: "512x384 * 384x512 f32".into(),
        sequential_ms: seq_ms,
        parallel_ms: par_ms,
    };

    // --- exact kNN ---------------------------------------------------------
    let base = random_matrix(12_000, 24, 3);
    let queries = random_matrix(120, 24, 4);
    let (seq_ms, seq_knn) = rayon::with_num_threads(1, || {
        time_best_of(reps, || {
            exact_knn(&base, &queries, 10, Distance::SquaredEuclidean)
        })
    });
    let (par_ms, par_knn) = rayon::with_num_threads(threads, || {
        time_best_of(reps, || {
            exact_knn(&base, &queries, 10, Distance::SquaredEuclidean)
        })
    });
    assert_eq!(
        seq_knn, par_knn,
        "exact_knn outputs must be identical across thread counts"
    );
    let knn = Record {
        name: "exact_knn",
        workload: "120 queries x 12000 base x 24d, k=10".into(),
        sequential_ms: seq_ms,
        parallel_ms: par_ms,
    };

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"pool_threads\": {threads},\n"));
    for r in [&matmul, &knn] {
        json.push_str(&format!(
            "  \"{}\": {{ \"workload\": \"{}\", \"sequential_ms\": {:.3}, \"parallel_ms\": {:.3}, \"speedup\": {:.3} }},\n",
            r.name,
            r.workload,
            r.sequential_ms,
            r.parallel_ms,
            r.speedup()
        ));
    }
    json.push_str(
        "  \"note\": \"speedup = sequential_ms / parallel_ms; meaningful only when host_cpus >= pool_threads\"\n}\n",
    );

    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    print!("{json}");
    eprintln!(
        "matmul: {:.2}x, exact_knn: {:.2}x on {} threads ({} host cpus)",
        matmul.speedup(),
        knn.speedup(),
        threads,
        host_cpus
    );

    // Optional regression gate (CI sets USP_ASSERT_SPEEDUP=1.5): a quietly-sequential
    // executor would score ~1.0x here while passing every determinism test, so the
    // smoke bench is the place that catches it. Only enforced when the host actually
    // has a core per pool thread.
    if let Ok(min) = std::env::var("USP_ASSERT_SPEEDUP") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_SPEEDUP must be a number");
        if threads >= 2 && host_cpus >= threads {
            for r in [&matmul, &knn] {
                assert!(
                    r.speedup() >= min,
                    "{} speedup {:.2}x is below the required {min}x on {threads} threads",
                    r.name,
                    r.speedup()
                );
            }
            eprintln!("speedup assertion passed (>= {min}x)");
        } else {
            eprintln!(
                "skipping speedup assertion: {host_cpus} host cpus cannot back {threads} threads"
            );
        }
    }
}
