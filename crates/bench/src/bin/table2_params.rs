//! Regenerates Table 2: learnable parameter counts for Neural LSH, the unsupervised
//! partitioner and K-means when dividing SIFT (d = 128) into 256 bins.
fn main() {
    let report = usp_eval::experiments::table2();
    println!("{}", report.render());
    match report.save_json(usp_eval::report::default_results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
}
