//! Regenerates Table 5: clustering quality (ARI/NMI/purity) of the unsupervised
//! partitioner vs DBSCAN, K-means and spectral clustering on 2-D toy datasets.
fn main() {
    let report = usp_eval::experiments::table5();
    println!("{}", report.render());
    match report.save_json(usp_eval::report::default_results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
}
