//! Regenerates the `table3_training_time` experiment of the paper's evaluation (see usp-eval::experiments).
fn main() {
    let scale = usp_eval::Scale::from_env();
    let report = usp_eval::experiments::table3(&scale);
    println!("{}", report.render());
    match report.save_json(usp_eval::report::default_results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
}
