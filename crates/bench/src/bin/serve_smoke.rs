//! Serving-throughput smoke benchmark for the batched query engine.
//!
//! Builds a K-means partition index over a synthetic SIFT-like dataset, answers the
//! same query stream twice — once query-at-a-time through `PartitionIndex::search`
//! (the unbatched serving path) and once through `QueryEngine::serve_batch` on the
//! persistent worker pool — verifies the answers are identical, and records both
//! throughputs plus the engine's latency statistics into `BENCH_serve.json`. CI runs
//! this in release mode with `USP_NUM_THREADS=4` and `USP_ASSERT_SERVE_SPEEDUP=1.0`
//! (batched serving must never be slower than single-query serving when the host has a
//! core per pool thread; on a 1-core container the recorded speedup is ~1.0 and the
//! gate is skipped).

use std::sync::Arc;
use std::time::Instant;

use usp_baselines::KMeansPartitioner;
use usp_data::synthetic;
use usp_index::{PartitionIndex, SearchResult};
use usp_linalg::Distance;
use usp_serve::{QueryEngine, QueryOptions};

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Workload: 10k base points, 1k queries, 32 bins, probe 8, k = 10.
    let (n, dim, n_queries, bins, probes, k) = (10_000, 24, 1_000, 32, 8, 10);
    let split = synthetic::sift_like(n + n_queries, dim, 7).split_queries(n_queries);
    let data = split.base.points();
    let queries = &split.queries;

    let partitioner = KMeansPartitioner::fit(data, bins, 11);
    let index = Arc::new(PartitionIndex::build(
        partitioner,
        data,
        Distance::SquaredEuclidean,
    ));
    let engine = QueryEngine::new(Arc::clone(&index));
    let opts = QueryOptions::new(k, probes);
    let reps = 3;

    // --- single-query serving (no batching, whatever pool the region gets) ---------
    let mut single_ms = f64::INFINITY;
    let mut single_out: Vec<SearchResult> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let out: Vec<SearchResult> = (0..queries.rows())
            .map(|qi| index.search(queries.row(qi), k, probes))
            .collect();
        single_ms = single_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        single_out = out;
    }

    // --- batched serving on the persistent pool -------------------------------------
    engine.reset_stats();
    let mut batch_ms = f64::INFINITY;
    let mut batch_out: Vec<SearchResult> = Vec::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = engine.serve_batch(queries, &opts);
        batch_ms = batch_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        batch_out = out;
    }
    assert_eq!(
        single_out, batch_out,
        "batched serving must return exactly the per-query Searcher results"
    );

    let stats = engine.stats();
    let single_qps = n_queries as f64 / (single_ms / 1e3);
    let batch_qps = n_queries as f64 / (batch_ms / 1e3);
    let speedup = batch_qps / single_qps;

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{n_queries} queries x {n} base x {dim}d, {bins} bins, probes={probes}, k={k}\",\n  \
         \"single_query\": {{ \"total_ms\": {single_ms:.3}, \"qps\": {single_qps:.1} }},\n  \
         \"batched\": {{ \"total_ms\": {batch_ms:.3}, \"qps\": {batch_qps:.1}, \"batch_size\": {n_queries} }},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"p50_latency_us\": {p50},\n  \"p99_latency_us\": {p99},\n  \
         \"mean_candidates\": {cand:.1},\n  \
         \"note\": \"speedup = batched qps / single-query qps; meaningful only when host_cpus >= pool_threads\"\n}}\n",
        p50 = stats.p50_latency_us,
        p99 = stats.p99_latency_us,
        cand = stats.mean_candidates,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    print!("{json}");
    eprintln!(
        "serve: single {single_qps:.0} qps, batched {batch_qps:.0} qps ({speedup:.2}x) \
         on {threads} threads ({host_cpus} host cpus)"
    );

    // Regression gate (CI sets USP_ASSERT_SERVE_SPEEDUP=1.0): batched serving must not
    // lose to the unbatched loop when the host can actually back the pool.
    if let Ok(min) = std::env::var("USP_ASSERT_SERVE_SPEEDUP") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_SERVE_SPEEDUP must be a number");
        if threads >= 2 && host_cpus >= threads {
            assert!(
                speedup >= min,
                "batched serving speedup {speedup:.2}x is below the required {min}x \
                 on {threads} threads"
            );
            eprintln!("serve speedup assertion passed (>= {min}x)");
        } else {
            eprintln!(
                "skipping serve speedup assertion: {host_cpus} host cpus cannot back \
                 {threads} threads"
            );
        }
    }
}
