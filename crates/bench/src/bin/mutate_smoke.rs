//! Mutable-index smoke benchmark: streaming writes against serving throughput.
//!
//! Builds a round-robin partition index, then ramps an uncompacted delta through
//! 1% / 5% / 20% of the base point count (inserts routed through the partitioner
//! into membins, plus one base tombstone per ten inserts) and measures batched
//! serving QPS at every stage, the sustained insert throughput over the whole ramp,
//! and the latency of folding the final 20% delta back into clean CSR arrays.
//! Before reporting it asserts the compacted index answers the query stream exactly
//! like a fresh build over its own point set. Results land in `BENCH_mutate.json`.
//! CI runs this in release mode with `USP_NUM_THREADS=4` and
//! `USP_ASSERT_MUTATE_QPS=0.8` (serving with a 5% uncompacted delta must keep at
//! least 80% of the clean index's throughput).

use std::sync::Arc;
use std::time::Instant;

use usp_data::synthetic;
use usp_index::partitioner::RoundRobinPartitioner;
use usp_index::{PartitionIndex, SearchResult};
use usp_linalg::Distance;
use usp_serve::{QueryEngine, QueryOptions};

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Workload: 20k base points, 200 queries, 32 bins, probe 8, k = 10. The insert
    // pool is drawn from the same distribution as the base set.
    let (n, dim, n_queries, bins, probes, k) = (20_000, 32, 200, 32, 8, 10);
    let split = synthetic::sift_like(n + n_queries, dim, 23).split_queries(n_queries);
    let data = split.base.points();
    let queries = &split.queries;
    let pool = synthetic::sift_like(n / 5, dim, 29); // enough for the 20% stage
    let pool = pool.points();

    let index = Arc::new(
        PartitionIndex::build(
            RoundRobinPartitioner::new(bins),
            data,
            Distance::SquaredEuclidean,
        )
        .with_compaction_threshold(0.10),
    );
    let engine = QueryEngine::new(Arc::clone(&index));
    engine.warm_up();
    let opts = QueryOptions::new(k, probes);
    let reps = 3;

    // --- serving QPS as the uncompacted delta grows -----------------------------------
    // Stage f: `f * n` inserts plus one base tombstone per ten inserts, accumulated
    // across stages (the delta only ever grows until compaction).
    let stages = [0.0f64, 0.01, 0.05, 0.20];
    let mut qps_at = Vec::with_capacity(stages.len());
    let mut inserted = 0usize;
    let mut deleted = 0usize;
    let mut insert_secs = 0.0f64;
    for &fraction in &stages {
        let target = (fraction * n as f64) as usize;
        if target > inserted {
            let t0 = Instant::now();
            for j in inserted..target {
                engine.insert(pool.row(j)).expect("pool rows match dims");
                if j % 10 == 9 {
                    // Tombstone a live base point so the stage also exercises the
                    // live-run CSR filtering, not just membin tails.
                    engine
                        .delete(deleted * 7 % n)
                        .expect("base delete must succeed");
                    deleted += 1;
                }
            }
            insert_secs += t0.elapsed().as_secs_f64();
            inserted = target;
        }
        let ms = best_ms(reps, || {
            let out = engine.serve_batch(queries, &opts);
            assert_eq!(out.len(), n_queries);
        });
        qps_at.push((fraction, n_queries as f64 / (ms / 1e3)));
    }
    let inserts_per_sec = inserted as f64 / insert_secs;
    let stats = index.mutation_stats();
    assert_eq!(stats.inserts, inserted);
    assert!(
        index.needs_compaction(),
        "a 20% delta must trip the 10% threshold"
    );

    // --- compaction: fold the 20% delta, then sanity-check against a fresh build ------
    let t0 = Instant::now();
    let (compacted, report) = index.compacted();
    let compact_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(report.live_points, n + inserted - deleted);
    let fresh = PartitionIndex::build(
        RoundRobinPartitioner::new(bins),
        compacted.data(),
        Distance::SquaredEuclidean,
    );
    let compacted_out: Vec<SearchResult> =
        QueryEngine::new(Arc::new(compacted)).serve_batch(queries, &opts);
    let fresh_out = QueryEngine::new(Arc::new(fresh)).serve_batch(queries, &opts);
    assert_eq!(
        compacted_out, fresh_out,
        "compacted index must answer exactly like a fresh build over its point set"
    );
    eprintln!(
        "mutate: compacted-vs-fresh equivalence verified ({} live points)",
        report.live_points
    );

    let qps_clean = qps_at[0].1;
    let qps_curve: Vec<String> = qps_at
        .iter()
        .map(|&(f, q)| format!("{{ \"delta_fraction\": {f}, \"qps\": {q:.1} }}"))
        .collect();
    let retained_at_5 = qps_at[2].1 / qps_clean;

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{n_queries} queries x {n} base x {dim}d, {bins} bins, probes={probes}, k={k}\",\n  \
         \"inserts\": {inserted},\n  \"tombstones\": {deleted},\n  \
         \"inserts_per_sec\": {inserts_per_sec:.0},\n  \
         \"qps_vs_delta\": [ {curve} ],\n  \
         \"qps_retained_at_5pct\": {retained_at_5:.3},\n  \
         \"compaction_ms\": {compact_ms:.3},\n  \"compacted_live_points\": {live},\n  \
         \"note\": \"delta stages accumulate inserts plus one base tombstone per ten inserts; \
         compacted answers asserted bit-identical to a fresh build over the final point set\"\n}}\n",
        curve = qps_curve.join(", "),
        live = report.live_points,
    );
    std::fs::write("BENCH_mutate.json", &json).expect("write BENCH_mutate.json");
    print!("{json}");
    eprintln!(
        "mutate: clean {qps_clean:.0} qps, 5% delta {:.0} qps ({retained_at_5:.2}x), \
         20% delta {:.0} qps, {inserts_per_sec:.0} inserts/s, compaction {compact_ms:.1} ms \
         on {threads} threads ({host_cpus} host cpus)",
        qps_at[2].1, qps_at[3].1,
    );

    // Regression gate (CI sets USP_ASSERT_MUTATE_QPS=0.8): a small uncompacted delta
    // must not crater serving throughput.
    if let Ok(min) = std::env::var("USP_ASSERT_MUTATE_QPS") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_MUTATE_QPS must be a number");
        assert!(
            retained_at_5 >= min,
            "serving with a 5% delta retains only {retained_at_5:.2}x of clean throughput, \
             below the required {min}x"
        );
        eprintln!("mutate qps retention assertion passed (>= {min}x)");
    }
}
