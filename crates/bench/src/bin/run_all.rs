//! Runs every experiment of the paper's evaluation in sequence and saves all reports under
//! `results/`. Control the dataset sizes with `USP_SCALE` (small | medium | large).
fn main() {
    let scale = usp_eval::Scale::from_env();
    println!("Running all experiments at scale '{}'", scale.name);
    let dir = usp_eval::report::default_results_dir();
    let started = std::time::Instant::now();

    let reports = vec![
        usp_eval::experiments::table2(),
        usp_eval::experiments::table5(),
        usp_eval::experiments::table3(&scale),
        usp_eval::experiments::table4(&scale),
        usp_eval::experiments::figure5(&scale),
        usp_eval::experiments::figure6(&scale),
        usp_eval::experiments::figure7(&scale),
        usp_eval::experiments::ablations(&scale),
    ];
    for report in &reports {
        println!("{}", report.render());
        match report.save_json(&dir) {
            Ok(path) => println!("saved {}\n", path.display()),
            Err(e) => eprintln!("could not save results: {e}"),
        }
    }
    println!(
        "all experiments finished in {:.1}s",
        started.elapsed().as_secs_f64()
    );
}
