//! Regenerates Figure 5: 10-NN accuracy vs candidate-set size for the unsupervised
//! partitioner and the space-partitioning baselines (SIFT/MNIST stand-ins, 16 & 256 bins).
fn main() {
    let scale = usp_eval::Scale::from_env();
    let report = usp_eval::experiments::figure5(&scale);
    println!("{}", report.render());
    match report.save_json(usp_eval::report::default_results_dir()) {
        Ok(path) => println!("saved {}", path.display()),
        Err(e) => eprintln!("could not save results: {e}"),
    }
}
