//! WAL durability smoke benchmark: what crash-consistency costs, and how fast it
//! replays.
//!
//! Ramps the same mutation workload (4k inserts plus one base tombstone per ten
//! inserts, `mutate_smoke`'s mix) through a round-robin partition index five
//! times: with no log attached, with an in-memory log (framing + CRC cost only),
//! and with a file-backed log under each [`SyncPolicy`] — fsync per record,
//! fsync every 64 records, and buffered-until-flush. It then writes a 20k-record
//! log (18k inserts + 2k deletes), measures how long `PartitionIndex::recover`
//! takes to replay it into a clean base, and asserts the recovered index answers
//! a query batch bit-identically to the index that wrote the log. Results land
//! in `BENCH_wal.json`. CI runs this in release mode with `USP_NUM_THREADS=4`
//! and `USP_ASSERT_WAL_QPS=0.1` (the buffered file-backed log must stay within
//! an order of magnitude of no-WAL mutation throughput). The round-robin insert
//! path is a few hundred nanoseconds, so framing + CRC + one buffered write
//! genuinely dominates it — the gate is not a "WAL is free" claim but a guard
//! against the buffered path regressing to a per-record fsync, which sits
//! another ~100x below the threshold (see `file_every_record` in the output).

use std::sync::Arc;
use std::time::Instant;

use usp_data::synthetic;
use usp_index::partitioner::RoundRobinPartitioner;
use usp_index::{FileStorage, MemStorage, PartitionIndex, SyncPolicy, Wal};
use usp_linalg::{Distance, Matrix};
use usp_serve::{QueryEngine, QueryOptions};

/// Applies the standard mutation mix — every pool row inserted, one base
/// tombstone per ten inserts — then flushes, so `OnFlush` pays its sync too.
/// Returns (mutations applied, seconds).
fn ramp(idx: &PartitionIndex<RoundRobinPartitioner>, pool: &Matrix, n_base: usize) -> (usize, f64) {
    let t0 = Instant::now();
    let mut deleted = 0usize;
    for j in 0..pool.rows() {
        idx.try_insert(pool.row(j)).expect("pool rows match dims");
        if j % 10 == 9 {
            idx.try_delete(deleted * 7 % n_base)
                .expect("base delete must succeed");
            deleted += 1;
        }
    }
    idx.wal_flush().expect("final flush must succeed");
    (pool.rows() + deleted, t0.elapsed().as_secs_f64())
}

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Workload: 20k base points, 32 bins, 4k-insert pool (mutate_smoke's shape),
    // 200 queries for the recovery equivalence check.
    let (n, dim, n_queries, bins, probes, k) = (20_000, 32, 200, 32, 8, 10);
    let split = synthetic::sift_like(n + n_queries, dim, 23).split_queries(n_queries);
    let data = split.base.points();
    let queries = &split.queries;
    let pool_set = synthetic::sift_like(n / 5, dim, 29);
    let pool = pool_set.points();

    let build = || {
        PartitionIndex::build(
            RoundRobinPartitioner::new(bins),
            data,
            Distance::SquaredEuclidean,
        )
    };

    let wal_dir = std::env::temp_dir().join(format!("usp_wal_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).expect("create wal scratch dir");

    // --- mutation throughput per sync policy ------------------------------------------
    let mut rates: Vec<(String, f64)> = Vec::new();
    let mutations = {
        let idx = build();
        let (ops, secs) = ramp(&idx, pool, n);
        rates.push(("no_wal".to_string(), ops as f64 / secs));
        ops
    };
    {
        let idx = build().with_wal(Wal::new(
            Box::new(MemStorage::new()),
            SyncPolicy::EveryRecord,
        ));
        let (ops, secs) = ramp(&idx, pool, n);
        assert_eq!(idx.wal_stats().expect("wal attached").appends, ops as u64);
        rates.push(("mem_every_record".to_string(), ops as f64 / secs));
    }
    for (name, policy) in [
        ("file_every_record", SyncPolicy::EveryRecord),
        ("file_every_64", SyncPolicy::EveryN(64)),
        ("file_onflush", SyncPolicy::OnFlush),
    ] {
        let path = wal_dir.join(format!("{name}.wal"));
        let storage = FileStorage::open(&path).expect("open wal file");
        let idx = build().with_wal(Wal::new(Box::new(storage), policy));
        let (ops, secs) = ramp(&idx, pool, n);
        let on_disk = std::fs::metadata(&path).expect("wal file exists").len();
        let stats = idx.wal_stats().expect("wal attached");
        assert_eq!(stats.appends, ops as u64);
        assert_eq!(
            stats.bytes, on_disk,
            "every framed byte must reach the file"
        );
        rates.push((name.to_string(), ops as f64 / secs));
    }
    std::fs::remove_dir_all(&wal_dir).expect("remove wal scratch dir");

    let rate_of = |name: &str| {
        rates
            .iter()
            .find(|(r, _)| r == name)
            .map(|&(_, q)| q)
            .expect("variant measured")
    };
    let retained_onflush = rate_of("file_onflush") / rate_of("no_wal");

    // --- recovery: replay a 20k-record log into a clean base --------------------------
    let rec_inserts = 18_000usize;
    let rec_pool_set = synthetic::sift_like(rec_inserts, dim, 31);
    let rec_pool = rec_pool_set.points();
    let log = MemStorage::new();
    let live = build().with_wal(Wal::new(Box::new(log.clone()), SyncPolicy::OnFlush));
    let mut deleted = 0usize;
    for j in 0..rec_inserts {
        live.try_insert(rec_pool.row(j))
            .expect("pool rows match dims");
        if j % 9 == 8 {
            live.try_delete(deleted * 7 % n)
                .expect("base delete must succeed");
            deleted += 1;
        }
    }
    live.wal_flush().expect("final flush must succeed");
    let rec_records = rec_inserts + deleted;
    assert_eq!(
        live.wal_stats().expect("wal attached").appends,
        rec_records as u64
    );
    let image = log.contents();

    let base = build();
    let t0 = Instant::now();
    let (recovered, report) = PartitionIndex::recover(
        base,
        Wal::new(Box::new(MemStorage::from_bytes(image)), SyncPolicy::OnFlush),
    )
    .expect("clean log must recover");
    let recovery_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.replayed_inserts + report.replayed_deletes,
        rec_records as u64
    );
    assert_eq!(report.torn_tail_bytes, 0, "a flushed log has no torn tail");
    let recovery_rps = rec_records as f64 / (recovery_ms / 1e3);

    let opts = QueryOptions::new(k, probes);
    let live_out = QueryEngine::new(Arc::new(live)).serve_batch(queries, &opts);
    let rec_out = QueryEngine::new(Arc::new(recovered)).serve_batch(queries, &opts);
    assert_eq!(
        live_out, rec_out,
        "recovered index must answer exactly like the index that wrote the log"
    );
    eprintln!("wal: recovered-vs-live equivalence verified ({rec_records} records replayed)");

    let rate_rows: Vec<String> = rates
        .iter()
        .map(|(name, q)| format!("{{ \"policy\": \"{name}\", \"mutations_per_sec\": {q:.0} }}"))
        .collect();
    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{mutations} mutations over {n} base x {dim}d, {bins} bins; \
         recovery log = {rec_records} records\",\n  \
         \"mutation_rates\": [ {rows} ],\n  \
         \"wal_onflush_retained\": {retained_onflush:.3},\n  \
         \"recovery_records\": {rec_records},\n  \
         \"recovery_ms\": {recovery_ms:.3},\n  \
         \"recovery_records_per_sec\": {recovery_rps:.0},\n  \
         \"note\": \"mutation mix is mutate_smoke's (one base tombstone per ten inserts); \
         recovered answers asserted bit-identical to the index that wrote the log\"\n}}\n",
        rows = rate_rows.join(", "),
    );
    std::fs::write("BENCH_wal.json", &json).expect("write BENCH_wal.json");
    print!("{json}");
    eprintln!(
        "wal: no_wal {:.0}/s, mem {:.0}/s, file fsync-each {:.0}/s, fsync-64 {:.0}/s, \
         buffered {:.0}/s ({retained_onflush:.2}x of no-WAL); recovery {recovery_ms:.1} ms \
         for {rec_records} records ({recovery_rps:.0}/s) on {threads} threads \
         ({host_cpus} host cpus)",
        rate_of("no_wal"),
        rate_of("mem_every_record"),
        rate_of("file_every_record"),
        rate_of("file_every_64"),
        rate_of("file_onflush"),
    );

    // Regression gate (CI sets USP_ASSERT_WAL_QPS=0.1): the buffered file-backed
    // log must stay within an order of magnitude of the raw mutation path — a
    // buffered path that regressed to per-record fsync lands ~100x below this.
    if let Ok(min) = std::env::var("USP_ASSERT_WAL_QPS") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_WAL_QPS must be a number");
        assert!(
            retained_onflush >= min,
            "buffered WAL retains only {retained_onflush:.3}x of no-WAL mutation throughput, \
             below the required {min}x"
        );
        eprintln!("wal throughput retention assertion passed (>= {min}x)");
    }
}
