//! Compressed-domain scoring smoke benchmark: PQ/ADC first pass vs exact scanning.
//!
//! Three measurements over the same K-means partition index (same scale as
//! `hotpath_smoke`, but at the higher dimensionality where a compressed first pass
//! earns its keep — 64d vectors squeezed to 8-byte PQ codes):
//!
//! 1. **First-pass throughput** — one query streamed over the whole base set,
//!    scored by the exact blocked kernel (`kernel::scan_block`) vs the blocked ADC
//!    lookup kernel (`kernel::AdcScan`) over the PQ codes. Pure single-thread
//!    compute; the ratio CI gates via `USP_ASSERT_QUANT_SPEEDUP`.
//! 2. **End-to-end batched QPS at matched candidate coverage** — `serve_batch`
//!    over an exact-mode index with no budget (every routed candidate scored by
//!    the exact kernel) vs the compressed index (every routed candidate scored by
//!    ADC, the best `B` re-ranked exactly). Both see the identical candidate
//!    stream, so the ratio is the end-to-end payoff of moving the first pass into
//!    the compressed domain.
//! 3. **Recall@10 vs ground truth** — the quality story at a *matched exact-eval
//!    budget*: exact mode with `rerank_budget = B` truncates the stream to a
//!    prefix of B, while compressed mode spends the same B exact evaluations on
//!    the ADC-best shortlist. Also reports the compressed pass's survivor ratio
//!    from the serving stats. CI floors the compressed recall via
//!    `USP_ASSERT_QUANT_RECALL`.
//!
//! Results land in `BENCH_quant.json`. CI runs this in release mode under
//! `USP_NUM_THREADS=4` with `USP_ASSERT_QUANT_SPEEDUP=1.5` and
//! `USP_ASSERT_QUANT_RECALL=0.85`.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use usp_baselines::KMeansPartitioner;
use usp_data::{exact_knn, synthetic};
use usp_index::{PartitionIndex, Scoring};
use usp_linalg::{kernel, topk::TopK, Distance};
use usp_quant::{ProductQuantizer, ProductQuantizerConfig};
use usp_serve::{QueryEngine, QueryOptions};

const DIST: Distance = Distance::SquaredEuclidean;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn recall_at_k(results: &[Vec<usize>], truth: &[Vec<usize>], k: usize) -> f64 {
    let mut recall = 0.0;
    for (got, want) in results.iter().zip(truth) {
        let t: HashSet<usize> = want.iter().copied().collect();
        recall += got.iter().filter(|i| t.contains(i)).count() as f64 / k as f64;
    }
    recall / results.len() as f64
}

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let (n, dim, n_queries, bins, probes, k) = (20_000usize, 64usize, 300usize, 32, 8, 10);
    let (m, n_centroids, budget) = (8usize, 256usize, 200usize);
    let split = synthetic::sift_like(n + n_queries, dim, 7).split_queries(n_queries);
    let data = split.base.points();
    let queries = &split.queries;
    let truth = exact_knn(data, queries, k, DIST);
    let reps = 5;

    let pq = ProductQuantizer::fit(data, &ProductQuantizerConfig::standard(m, n_centroids));
    let codes = pq.encode_all(data);

    // --- 1. first-pass micro: exact blocked scan vs blocked ADC scan -----------------
    let kernel_queries = 20usize;
    let flat = data.as_slice();
    let exact_ms = best_ms(reps, || {
        for qi in 0..kernel_queries {
            let q = queries.row(qi);
            let mut top = TopK::new(k);
            kernel::scan_block(DIST, q, flat, dim, 0, &mut top);
            std::hint::black_box(top.into_sorted());
        }
    });
    let adc_ms = best_ms(reps, || {
        for qi in 0..kernel_queries {
            let table = pq.adc_table(DIST, queries.row(qi));
            let mut scan = kernel::AdcScan::new(&table, m, k);
            scan.scan_segment(&codes, n, 0);
            std::hint::black_box(scan.into_winners());
        }
    });
    let scanned_rows = (kernel_queries * n) as f64;
    let exact_mrows = scanned_rows / (exact_ms / 1e3) / 1e6;
    let adc_mrows = scanned_rows / (adc_ms / 1e3) / 1e6;
    let kernel_speedup = adc_mrows / exact_mrows;
    eprintln!(
        "quant: first pass exact {exact_mrows:.1} Mrows/s, adc {adc_mrows:.1} Mrows/s \
         ({kernel_speedup:.2}x, table build included)"
    );

    // --- 2. end-to-end batched serving at matched candidate coverage -----------------
    let build_index = || {
        let partitioner = KMeansPartitioner::fit(data, bins, 11);
        PartitionIndex::build(partitioner, data, DIST)
    };
    let exact_index = Arc::new(build_index());
    let compressed_index =
        Arc::new(build_index().with_scoring(Scoring::compressed(Arc::new(pq), budget)));

    // Throughput: both engines score the identical candidate stream; the exact engine
    // runs the float kernel over all of it, the compressed engine runs ADC over all
    // of it and the exact kernel over the best `budget` only.
    let full_opts = QueryOptions::new(k, probes);
    let budget_opts = QueryOptions::new(k, probes).with_rerank_budget(budget);
    let exact_engine = QueryEngine::new(Arc::clone(&exact_index));
    exact_engine.warm_up();
    let mut exact_full_out = Vec::new();
    let exact_full_ms = best_ms(reps, || {
        exact_full_out = exact_engine.serve_batch(queries, &full_opts);
    });
    let compressed_engine = QueryEngine::new(Arc::clone(&compressed_index));
    compressed_engine.warm_up();
    compressed_engine.reset_stats();
    let mut compressed_out = Vec::new();
    let compressed_batch_ms = best_ms(reps, || {
        compressed_out = compressed_engine.serve_batch(queries, &budget_opts);
    });
    let reference = compressed_index.search_batch(queries, k, probes);
    for (qi, r) in compressed_out.iter().enumerate() {
        assert_eq!(
            r, &reference[qi],
            "batched compressed serving must stay bit-identical to the Searcher path \
             (query {qi})"
        );
        assert_eq!(
            r.candidates_scanned, budget,
            "compressed mode spends exactly the budgeted exact evaluations"
        );
        assert_eq!(
            r.compressed_scanned, exact_full_out[qi].candidates_scanned,
            "matched coverage: the ADC pass sees the stream the exact engine scans"
        );
    }
    let exact_full_qps = n_queries as f64 / (exact_full_ms / 1e3);
    let compressed_qps = n_queries as f64 / (compressed_batch_ms / 1e3);
    let serve_speedup = compressed_qps / exact_full_qps;
    let stats = compressed_engine.stats();
    eprintln!(
        "quant: batched exact-full {exact_full_qps:.0} qps, compressed {compressed_qps:.0} qps \
         ({serve_speedup:.2}x at matched coverage, survivor ratio {:.4})",
        stats.survivor_ratio
    );

    // --- 3. recall at a matched exact-eval budget ------------------------------------
    let mut exact_budget_out = Vec::new();
    let exact_budget_ms = best_ms(reps, || {
        exact_budget_out = exact_engine.serve_batch(queries, &budget_opts);
    });
    let exact_budget_qps = n_queries as f64 / (exact_budget_ms / 1e3);
    let exact_full_ids: Vec<Vec<usize>> = exact_full_out.iter().map(|r| r.ids.clone()).collect();
    let exact_budget_ids: Vec<Vec<usize>> =
        exact_budget_out.iter().map(|r| r.ids.clone()).collect();
    let compressed_ids: Vec<Vec<usize>> = compressed_out.iter().map(|r| r.ids.clone()).collect();
    let exact_full_recall = recall_at_k(&exact_full_ids, &truth, k);
    let exact_budget_recall = recall_at_k(&exact_budget_ids, &truth, k);
    let compressed_recall = recall_at_k(&compressed_ids, &truth, k);
    eprintln!(
        "quant: recall@{k} exact-full {exact_full_recall:.4}, exact-budget {exact_budget_recall:.4}, \
         compressed {compressed_recall:.4} (both budgeted modes spend {budget} exact evals)"
    );

    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{n_queries} queries x {n} base x {dim}d, {bins} bins, probes={probes}, k={k}, \
         pq m={m} k*={n_centroids}, budget={budget}\",\n  \
         \"first_pass\": {{ \"exact_mrows_per_s\": {exact_mrows:.2}, \"adc_mrows_per_s\": {adc_mrows:.2}, \"speedup\": {kernel_speedup:.3} }},\n  \
         \"batched\": {{ \"exact_full_qps\": {exact_full_qps:.1}, \"exact_budget_qps\": {exact_budget_qps:.1}, \
         \"compressed_qps\": {compressed_qps:.1}, \"speedup_vs_exact_full\": {serve_speedup:.3} }},\n  \
         \"quality\": {{ \"exact_full_recall_at_10\": {exact_full_recall:.4}, \"exact_budget_recall_at_10\": {exact_budget_recall:.4}, \
         \"compressed_recall_at_10\": {compressed_recall:.4}, \
         \"survivor_ratio\": {survivor:.5}, \"mean_compressed_candidates\": {mean_compressed:.1} }},\n  \
         \"note\": \"first pass = one query against all {n} rows (single-thread, ADC includes per-query table build); \
         batched speedup compares matched candidate coverage: exact-full scores the whole routed stream with the \
         float kernel, compressed scores it with ADC and re-ranks the best {budget} exactly; exact-budget truncates \
         the stream to the same {budget} exact evals the compressed mode spends, isolating the recall payoff; \
         compressed answers asserted bit-identical to per-query search\"\n}}\n",
        survivor = stats.survivor_ratio,
        mean_compressed = stats.mean_compressed_candidates,
    );
    std::fs::write("BENCH_quant.json", &json).expect("write BENCH_quant.json");
    print!("{json}");

    // Regression gates (CI sets USP_ASSERT_QUANT_SPEEDUP=1.5 and
    // USP_ASSERT_QUANT_RECALL=0.85): the ADC first pass must beat the exact kernel
    // it bypasses by a wide margin, without giving up recall.
    if let Ok(min) = std::env::var("USP_ASSERT_QUANT_SPEEDUP") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_QUANT_SPEEDUP must be a number");
        assert!(
            kernel_speedup >= min,
            "ADC first-pass speedup {kernel_speedup:.2}x is below the required {min}x"
        );
        eprintln!("quant first-pass speedup assertion passed (>= {min}x)");
    }
    if let Ok(min) = std::env::var("USP_ASSERT_QUANT_RECALL") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_QUANT_RECALL must be a number");
        assert!(
            compressed_recall >= min,
            "compressed recall@{k} {compressed_recall:.4} is below the required {min}"
        );
        eprintln!("quant recall assertion passed (>= {min})");
    }
}
