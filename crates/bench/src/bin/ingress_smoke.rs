//! Network-ingress smoke benchmark: loopback TCP against the epoll event loop.
//!
//! Builds a K-means partition index over a synthetic SIFT-like dataset, spawns
//! the ingress on an ephemeral port, measures the closed-loop wire capacity
//! (one pipelined connection, unbounded appetite), then replays an open-loop
//! query stream at 0.5×/1×/2× of that capacity and records served QPS, p99
//! reply latency and shed rate per offered rate into `BENCH_ingress.json`.
//!
//! The 2× run is the backpressure demonstration: the pending queue must stay
//! at its cap (high-water mark ≤ queue_cap) and the overload must surface as
//! explicit `SHED` replies, not as growing buffers or slow collapse. CI runs
//! this in release mode with `USP_NUM_THREADS=4` and `USP_ASSERT_INGRESS_QPS`
//! set to the minimum fraction of closed-loop capacity the server must still
//! serve while overloaded 2×.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use usp_baselines::KMeansPartitioner;
use usp_index::PartitionIndex;
use usp_linalg::Distance;
use usp_serve::protocol::{encode_query, FrameDecoder, OP_REPLY_QUERY, OP_SHED};
use usp_serve::{IngressConfig, IngressHandle, QueryEngine, QueryOptions};

struct RunStats {
    offered_qps: f64,
    served_qps: f64,
    p99_ms: f64,
    shed_rate: f64,
    queue_hwm: u64,
}

/// Single-threaded nonblocking open-loop client: sends queries paced at
/// `rate_qps` for `duration`, reading replies as they arrive, then drains the
/// tail. `rate_qps = f64::INFINITY` degenerates to a closed-loop firehose with
/// a bounded pipeline window (the capacity probe).
fn run_client(
    addr: std::net::SocketAddr,
    queries: &[Vec<f32>],
    rate_qps: f64,
    duration: Duration,
) -> (u64, u64, Vec<f64>, f64) {
    const WINDOW: usize = 64; // firehose mode: max outstanding requests
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream.set_nonblocking(true).expect("nonblocking");

    let mut decoder = FrameDecoder::new();
    let mut out: Vec<u8> = Vec::new();
    let mut out_pos = 0usize;
    let mut sent: u64 = 0;
    let mut sent_at: HashMap<u32, Instant> = HashMap::new();
    let mut served: u64 = 0;
    let mut shed: u64 = 0;
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut read_buf = [0u8; 64 * 1024];

    let start = Instant::now();
    let deadline = start + duration;
    loop {
        let now = Instant::now();
        let sending = now < deadline;
        if sending {
            // Due count under the pacing schedule (or window refill when
            // firehosing at infinite rate).
            let due = if rate_qps.is_finite() {
                (start.elapsed().as_secs_f64() * rate_qps) as u64
            } else {
                served + shed + WINDOW as u64
            };
            while sent < due {
                let rid = sent as u32;
                encode_query(&mut out, rid, &queries[sent as usize % queries.len()]);
                sent_at.insert(rid, Instant::now());
                sent += 1;
            }
        }
        // Flush whatever the socket will take without blocking.
        while out_pos < out.len() {
            match stream.write(&out[out_pos..]) {
                Ok(0) => panic!("server closed the connection mid-benchmark"),
                Ok(n) => out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("write failed: {e}"),
            }
        }
        if out_pos == out.len() {
            out.clear();
            out_pos = 0;
        }
        // Drain replies.
        match stream.read(&mut read_buf) {
            Ok(0) => panic!("server hung up mid-benchmark"),
            Ok(n) => decoder.push(&read_buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => panic!("read failed: {e}"),
        }
        while let Some(frame) = decoder.next_frame().expect("well-formed server stream") {
            let t0 = sent_at
                .remove(&frame.request_id)
                .expect("reply to a request we sent");
            match frame.opcode {
                OP_REPLY_QUERY => {
                    served += 1;
                    latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                OP_SHED => shed += 1,
                other => panic!("unexpected reply opcode {other:#x}"),
            }
        }
        if !sending && sent_at.is_empty() && out_pos == out.len() {
            break;
        }
        if !sending && start.elapsed() > duration + Duration::from_secs(10) {
            panic!(
                "{} replies still outstanding after drain grace",
                sent_at.len()
            );
        }
        std::thread::sleep(Duration::from_micros(50));
    }
    (served, shed, latencies_ms, start.elapsed().as_secs_f64())
}

fn p99(latencies_ms: &mut [f64]) -> f64 {
    if latencies_ms.is_empty() {
        return 0.0;
    }
    latencies_ms.sort_by(|a, b| usp_linalg::topk::nan_class_cmp_f64(*a, *b));
    latencies_ms[(latencies_ms.len() - 1).min(latencies_ms.len() * 99 / 100)]
}

fn main() {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Workload: 8k base points, 26 bins, probe 6, k = 10.
    let (n, dim, n_queries, bins, probes, k) = (8_000, 24, 512, 26, 6, 10);
    let split = usp_data::synthetic::sift_like(n + n_queries, dim, 7).split_queries(n_queries);
    let data = split.base.points();
    let queries: Vec<Vec<f32>> = (0..split.queries.rows())
        .map(|qi| split.queries.row(qi).to_vec())
        .collect();

    let partitioner = KMeansPartitioner::fit(data, bins, 11);
    let index = Arc::new(PartitionIndex::build(
        partitioner,
        data,
        Distance::SquaredEuclidean,
    ));
    let engine = Arc::new(QueryEngine::new(index));
    let mut config = IngressConfig::new(QueryOptions::new(k, probes));
    config.max_batch = 32;
    config.max_delay = Duration::from_millis(1);
    let queue_cap = 8 * config.max_batch as u64;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let handle = IngressHandle::spawn(engine, listener, config).expect("spawn ingress");
    let addr = handle.local_addr();
    let run_secs = Duration::from_millis(1500);

    // --- closed-loop capacity probe -------------------------------------------------
    let (cap_served, cap_shed, mut cap_lat, cap_elapsed) =
        run_client(addr, &queries, f64::INFINITY, run_secs);
    let capacity_qps = cap_served as f64 / cap_elapsed;
    let cap_p99 = p99(&mut cap_lat);
    eprintln!(
        "ingress capacity: {capacity_qps:.0} qps served, {cap_shed} shed, p99 {cap_p99:.2} ms"
    );

    // --- open-loop runs at 0.5x / 1x / 2x capacity ----------------------------------
    let mut runs: Vec<RunStats> = Vec::new();
    for factor in [0.5, 1.0, 2.0] {
        let offered = capacity_qps * factor;
        let (served, shed, mut lat, elapsed) = run_client(addr, &queries, offered, run_secs);
        let snap = handle.stats();
        runs.push(RunStats {
            offered_qps: offered,
            served_qps: served as f64 / elapsed,
            p99_ms: p99(&mut lat),
            shed_rate: shed as f64 / (served + shed) as f64,
            queue_hwm: snap.queue_depth_hwm,
        });
        let r = runs.last().expect("just pushed");
        eprintln!(
            "ingress {factor}x: offered {offered:.0} qps, served {:.0} qps, \
             p99 {:.2} ms, shed {:.1}%, queue hwm {}",
            r.served_qps,
            r.p99_ms,
            r.shed_rate * 100.0,
            r.queue_hwm
        );
    }
    let overload = &runs[2];

    // Backpressure invariants, asserted unconditionally: the queue never grows
    // past its cap, and 2x overload surfaces as explicit SHED replies.
    assert!(
        overload.queue_hwm <= queue_cap,
        "pending queue exceeded its cap under overload: hwm {} > {queue_cap}",
        overload.queue_hwm
    );
    assert!(
        overload.shed_rate > 0.0,
        "2x overload produced no SHED replies — backpressure is not engaging"
    );

    let run_json = |r: &RunStats| {
        format!(
            "{{ \"offered_qps\": {:.1}, \"served_qps\": {:.1}, \"p99_ms\": {:.3}, \
             \"shed_rate\": {:.4}, \"queue_depth_hwm\": {} }}",
            r.offered_qps, r.served_qps, r.p99_ms, r.shed_rate, r.queue_hwm
        )
    };
    let json = format!(
        "{{\n  \"host_cpus\": {host_cpus},\n  \"pool_threads\": {threads},\n  \
         \"workload\": \"{n} base x {dim}d, {bins} bins, probes={probes}, k={k}, \
         max_batch=32, queue_cap={queue_cap}\",\n  \
         \"closed_loop\": {{ \"qps\": {capacity_qps:.1}, \"p99_ms\": {cap_p99:.3} }},\n  \
         \"half_capacity\": {},\n  \"at_capacity\": {},\n  \"twice_capacity\": {},\n  \
         \"note\": \"twice_capacity is the backpressure demo: queue_depth_hwm <= queue_cap \
         and shed_rate > 0 are asserted\"\n}}\n",
        run_json(&runs[0]),
        run_json(&runs[1]),
        run_json(&runs[2]),
    );
    std::fs::write("BENCH_ingress.json", &json).expect("write BENCH_ingress.json");
    print!("{json}");

    // Regression gate (CI sets USP_ASSERT_INGRESS_QPS, a fraction like 0.5):
    // under 2x overload the server must still serve at least that fraction of
    // its closed-loop capacity — shedding is load control, not collapse.
    if let Ok(min) = std::env::var("USP_ASSERT_INGRESS_QPS") {
        let min: f64 = min
            .trim()
            .parse()
            .expect("USP_ASSERT_INGRESS_QPS must be a number");
        let ratio = overload.served_qps / capacity_qps;
        if threads >= 2 && host_cpus >= threads {
            assert!(
                ratio >= min,
                "served qps under 2x overload is {ratio:.2}x of capacity, below the \
                 required {min}x"
            );
            eprintln!("ingress overload assertion passed (>= {min}x of capacity)");
        } else {
            eprintln!(
                "skipping ingress qps assertion: {host_cpus} host cpus cannot back \
                 {threads} threads"
            );
        }
    }

    handle.shutdown();
}
