//! Shared helpers for the benchmark suite: small seeded workloads used by both the
//! Criterion micro-benchmarks and (indirectly) the experiment binaries.

use usp_data::{Dataset, KnnMatrix, SplitDataset};
use usp_linalg::Distance;

/// Distance used across the benchmark suite.
pub const DIST: Distance = Distance::SquaredEuclidean;

/// A small clustered workload for micro-benchmarks (2k base points, 16 dimensions).
pub fn bench_dataset() -> SplitDataset {
    usp_data::synthetic::sift_like(2_100, 16, 7).split_queries(100)
}

/// A tiny clustered dataset (for construction-heavy benches).
pub fn tiny_dataset() -> Dataset {
    usp_data::synthetic::sift_like(600, 16, 9)
}

/// The k'-NN matrix of the benchmark workload's base points.
pub fn bench_knn(split: &SplitDataset, k: usize) -> KnnMatrix {
    KnnMatrix::build(split.base.points(), k, DIST)
}
