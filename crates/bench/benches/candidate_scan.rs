//! Criterion bench: exact re-ranking of candidate sets of increasing size (the O(c·d)
//! online term of §4.5 that the balance objective of the loss is designed to control).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usp_index::rerank::rerank;

fn bench_candidate_scan(c: &mut Criterion) {
    let split = usp_bench::bench_dataset();
    let data = split.base.points();
    let query = split.queries.row_to_vec(0);
    let mut group = c.benchmark_group("candidate_scan");
    for size in [128usize, 512, 2000] {
        let candidates: Vec<u32> = (0..size as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &candidates, |b, cand| {
            b.iter(|| black_box(rerank(data, &query, cand, 10, usp_bench::DIST)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_candidate_scan
}
criterion_main!(benches);
