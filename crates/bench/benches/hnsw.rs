//! Criterion bench: HNSW query cost at several beam widths (the Figure 7 graph baseline).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usp_graph::{Hnsw, HnswConfig};

fn bench_hnsw(c: &mut Criterion) {
    let split = usp_bench::bench_dataset();
    let hnsw = Hnsw::build(
        split.base.points(),
        HnswConfig {
            m: 16,
            ef_construction: 80,
            ..Default::default()
        },
    );
    let query = split.queries.row_to_vec(0);
    let mut group = c.benchmark_group("hnsw_search");
    for ef in [16usize, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(ef), &ef, |b, &ef| {
            b.iter(|| black_box(hnsw.search(&query, 10, ef)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hnsw
}
criterion_main!(benches);
