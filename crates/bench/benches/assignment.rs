//! Criterion bench: per-query bin inference cost of each partitioner (the O(d) online
//! term of §4.5) — USP MLP vs K-means centroid scan vs cross-polytope LSH vs a KD-tree.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usp_baselines::{BinaryPartitionTree, CrossPolytopeLsh, KMeansPartitioner, TreeConfig};
use usp_core::{train_partitioner, UspConfig};
use usp_index::Partitioner;

fn bench_assignment(c: &mut Criterion) {
    let split = usp_bench::bench_dataset();
    let data = split.base.points();
    let knn = usp_bench::bench_knn(&split, 5);
    let query = split.queries.row_to_vec(0);

    let usp = train_partitioner(
        data,
        &knn,
        &UspConfig {
            knn_k: 5,
            epochs: 5,
            ..UspConfig::fast(16)
        },
        None,
    );
    let kmeans = KMeansPartitioner::fit(data, 16, 3);
    let lsh = CrossPolytopeLsh::fit(data, 16, 4);
    let tree = BinaryPartitionTree::kd(data, &TreeConfig::new(4));

    let mut group = c.benchmark_group("assignment");
    group.bench_function("usp_mlp", |b| {
        b.iter(|| black_box(usp.assign(black_box(&query))))
    });
    group.bench_function("kmeans_16", |b| {
        b.iter(|| black_box(kmeans.assign(black_box(&query))))
    });
    group.bench_function("cross_polytope_lsh", |b| {
        b.iter(|| black_box(lsh.assign(black_box(&query))))
    });
    group.bench_function("kd_tree_depth4", |b| {
        b.iter(|| black_box(tree.assign(black_box(&query))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_assignment
}
criterion_main!(benches);
