//! Criterion bench: k'-NN matrix construction — the paper's only preprocessing step
//! (§4.2.1), reported as ~30 minutes on SIFT1M and seconds at reproduction scale.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usp_data::KnnMatrix;

fn bench_knn_graph(c: &mut Criterion) {
    let data = usp_bench::tiny_dataset();
    let mut group = c.benchmark_group("knn_matrix_600pts");
    for k in [5usize, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(KnnMatrix::build(data.points(), k, usp_bench::DIST)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_knn_graph
}
criterion_main!(benches);
