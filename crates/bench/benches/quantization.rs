//! Criterion bench: quantized (ADC) distance evaluation vs exact distances, and encoding
//! cost — the sketching speed-up exploited by the Figure 7 pipelines.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usp_linalg::distance::squared_euclidean;
use usp_linalg::Distance;
use usp_quant::{ProductQuantizer, ProductQuantizerConfig};

fn bench_quantization(c: &mut Criterion) {
    let split = usp_bench::bench_dataset();
    let data = split.base.points();
    let pq = ProductQuantizer::fit(data, &ProductQuantizerConfig::anisotropic(8, 16, 4.0));
    let codes = pq.encode_all(data);
    let query = split.queries.row_to_vec(0);
    let table = pq.adc_table(Distance::SquaredEuclidean, &query);
    let m = pq.n_subspaces();

    let mut group = c.benchmark_group("quantization");
    group.bench_function("adc_scan_2000", |b| {
        b.iter(|| {
            let mut best = f32::INFINITY;
            for i in 0..data.rows() {
                best = best.min(pq.adc_distance(&table, &codes[i * m..(i + 1) * m]));
            }
            black_box(best)
        })
    });
    group.bench_function("exact_scan_2000", |b| {
        b.iter(|| {
            let mut best = f32::INFINITY;
            for i in 0..data.rows() {
                best = best.min(squared_euclidean(&query, data.row(i)));
            }
            black_box(best)
        })
    });
    group.bench_function("encode_one", |b| {
        b.iter(|| black_box(pq.encode(black_box(&query))))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantization
}
criterion_main!(benches);
