//! Criterion bench: one mini-batch step of the unsupervised loss (forward + loss +
//! backward + Adam) for the paper's MLP and for logistic regression.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use usp_core::{loss, ModelKind, PartitionModel, UspConfig};
use usp_nn::{Adam, Optimizer};

fn bench_training_step(c: &mut Criterion) {
    let split = usp_bench::bench_dataset();
    let knn = usp_bench::bench_knn(&split, 10);
    let data = split.base.points();
    let batch: Vec<usize> = (0..256).collect();
    let x = data.select_rows(&batch);
    let mut neighbor_rows = Vec::new();
    for &i in &batch {
        neighbor_rows.extend(knn.neighbors_of(i).iter().map(|&j| j as usize));
    }
    let neighbors = data.select_rows(&neighbor_rows);

    let mut group = c.benchmark_group("training_step");
    for (name, model_kind) in [
        (
            "mlp_128",
            ModelKind::Mlp {
                hidden: vec![128],
                dropout: 0.1,
            },
        ),
        ("logistic", ModelKind::Logistic),
    ] {
        let cfg = UspConfig {
            bins: 16,
            model: model_kind,
            ..UspConfig::paper_default(16)
        };
        let mut model = PartitionModel::new(&cfg, data.cols());
        let mut opt = Adam::new(1e-3);
        group.bench_function(name, |b| {
            b.iter(|| {
                let neighbor_bins = model.assign_batch(&neighbors);
                let targets =
                    loss::neighbor_bin_targets(&neighbor_bins, batch.len(), knn.k(), 16, true);
                let logits = model.network_mut().forward(&x, true);
                let (value, dlogits) = loss::unsupervised_loss(&logits, &targets, None, 7.0);
                model.network_mut().zero_grad();
                model.network_mut().backward(&dlogits);
                opt.step(model.network_mut());
                black_box(value.total)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training_step
}
criterion_main!(benches);
