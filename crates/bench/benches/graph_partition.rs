//! Criterion bench: balanced graph partitioning — the Neural LSH preprocessing step whose
//! cost (hours with KaHIP on SIFT1M) motivates the paper's unsupervised approach.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use usp_data::KnnMatrix;
use usp_graph::{partition_graph, GraphPartitionConfig, KnnGraph};

fn bench_graph_partition(c: &mut Criterion) {
    let data = usp_bench::tiny_dataset();
    let knn = KnnMatrix::build(data.points(), 10, usp_bench::DIST);
    let graph = KnnGraph::from_knn_matrix(&knn, true);
    let mut group = c.benchmark_group("graph_partition_600pts");
    for bins in [4usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(bins), &bins, |b, &bins| {
            b.iter(|| black_box(partition_graph(&graph, &GraphPartitionConfig::new(bins))))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_partition
}
criterion_main!(benches);
