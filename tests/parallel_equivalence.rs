//! Parallel-vs-sequential equivalence harness.
//!
//! The rayon shim executes parallel regions over blocks whose boundaries never depend on
//! the thread count, so every hot path is required to produce **bit-identical** results
//! on 1 thread and on many. These tests pin that contract for each paper-critical
//! kernel: dense matmul, exact k-NN ground truth, k-means (assignment + parallel update),
//! PQ encoding, index building and the evaluation sweep. CI additionally runs the whole
//! suite under `USP_NUM_THREADS=1` and `USP_NUM_THREADS=4`; the in-process
//! `rayon::with_num_threads` override used here makes the comparison explicit and
//! self-contained regardless of the ambient pool size.

use std::sync::Arc;

use neural_partitioner::baselines::KMeansPartitioner;
use neural_partitioner::serve::{QueryEngine, QueryOptions};
use rayon::with_num_threads;
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_index::{AnnSearcher, PartitionIndex};
use usp_linalg::{rng as lrng, Distance, Matrix};
use usp_quant::{KMeans, KMeansConfig, ProductQuantizer, ProductQuantizerConfig};

const DIST: Distance = Distance::SquaredEuclidean;

/// Thread counts compared against the single-threaded reference. Deliberately not powers
/// of two only: ragged splits across 3 workers catch off-by-one chunking bugs.
const THREAD_COUNTS: &[usize] = &[2, 3, 4, 8];

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = lrng::seeded(seed);
    let data = (0..rows * cols)
        .map(|_| lrng::standard_normal(&mut rng))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[test]
fn matmul_is_bit_identical_across_thread_counts() {
    // Odd shapes so blocks do not divide evenly.
    let a = random_matrix(57, 33, 11);
    let b = random_matrix(33, 41, 12);
    let bt = random_matrix(41, 33, 13);
    let c = random_matrix(57, 29, 14);

    let reference = with_num_threads(1, || {
        (
            a.matmul(&b),
            a.matmul_transpose_b(&bt),
            a.transpose_matmul(&c),
        )
    });
    for &t in THREAD_COUNTS {
        let (mm, mtb, tmm) = with_num_threads(t, || {
            (
                a.matmul(&b),
                a.matmul_transpose_b(&bt),
                a.transpose_matmul(&c),
            )
        });
        assert_eq!(
            reference.0.as_slice(),
            mm.as_slice(),
            "matmul differs at {t} threads"
        );
        assert_eq!(
            reference.1.as_slice(),
            mtb.as_slice(),
            "matmul_transpose_b differs at {t} threads"
        );
        assert_eq!(
            reference.2.as_slice(),
            tmm.as_slice(),
            "transpose_matmul differs at {t} threads"
        );
    }
}

#[test]
fn exact_knn_and_knn_matrix_are_thread_count_invariant() {
    let base = random_matrix(400, 12, 21);
    let queries = random_matrix(60, 12, 22);

    let knn_ref = with_num_threads(1, || exact_knn(&base, &queries, 10, DIST));
    let matrix_ref = with_num_threads(1, || KnnMatrix::build(&base, 8, DIST));
    for &t in THREAD_COUNTS {
        let knn = with_num_threads(t, || exact_knn(&base, &queries, 10, DIST));
        assert_eq!(knn_ref, knn, "exact_knn differs at {t} threads");
        let matrix = with_num_threads(t, || KnnMatrix::build(&base, 8, DIST));
        assert_eq!(
            matrix_ref.as_slice(),
            matrix.as_slice(),
            "KnnMatrix differs at {t} threads"
        );
    }
}

#[test]
fn kmeans_fit_and_assignment_are_thread_count_invariant() {
    // Covers the parallel assignment step AND the chunk-accumulated update step: any
    // thread-count-dependent float merge would make centroids drift apart over the
    // Lloyd iterations.
    let data = synthetic::blobs(900, 8, 5, 2.0, 31).points().clone();
    let config = KMeansConfig::new(5);

    let reference = with_num_threads(1, || KMeans::fit(&data, &config));
    let assign_ref = with_num_threads(1, || reference.assign_all(&data));
    for &t in THREAD_COUNTS {
        let model = with_num_threads(t, || KMeans::fit(&data, &config));
        assert_eq!(
            reference.centroids, model.centroids,
            "k-means centroids differ at {t} threads"
        );
        assert_eq!(
            reference.inertia.to_bits(),
            model.inertia.to_bits(),
            "k-means inertia differs at {t} threads"
        );
        let assignments = with_num_threads(t, || model.assign_all(&data));
        assert_eq!(assign_ref, assignments, "assignments differ at {t} threads");
    }
}

#[test]
fn pq_training_and_encoding_are_thread_count_invariant() {
    let data = synthetic::sift_like(500, 16, 41).points().clone();
    let config = ProductQuantizerConfig::standard(4, 16);

    let (codes_ref, err_ref) = with_num_threads(1, || {
        let pq = ProductQuantizer::fit(&data, &config);
        (pq.encode_all(&data), pq.reconstruction_error(&data))
    });
    for &t in THREAD_COUNTS {
        let (codes, err) = with_num_threads(t, || {
            let pq = ProductQuantizer::fit(&data, &config);
            (pq.encode_all(&data), pq.reconstruction_error(&data))
        });
        assert_eq!(codes_ref, codes, "PQ codes differ at {t} threads");
        assert_eq!(
            err_ref.to_bits(),
            err.to_bits(),
            "PQ reconstruction error differs at {t} threads"
        );
    }
}

#[test]
fn partition_index_build_is_thread_count_invariant() {
    let data = synthetic::blobs(600, 6, 4, 1.5, 51).points().clone();

    let build = |threads: usize| {
        with_num_threads(threads, || {
            let partitioner = KMeansPartitioner::fit(&data, 4, 7);
            PartitionIndex::build(partitioner, &data, DIST)
        })
    };
    let reference = build(1);
    for &t in THREAD_COUNTS {
        let index = build(t);
        assert_eq!(
            reference.assignments(),
            index.assignments(),
            "assignments differ at {t} threads"
        );
        for bin in 0..reference.num_bins() {
            assert_eq!(
                reference.bucket(bin),
                index.bucket(bin),
                "bucket {bin} differs at {t} threads"
            );
        }
    }
}

#[test]
fn compressed_index_build_is_thread_count_invariant() {
    // The CSR code array is encoded in a parallel region at `with_scoring` time and
    // the quantizer itself trains each subspace in parallel; both must be
    // thread-count invariant for compressed answers to be reproducible.
    let data = synthetic::blobs(500, 8, 4, 1.5, 81).points().clone();
    let queries = random_matrix(12, 8, 82);

    let build = |threads: usize| {
        with_num_threads(threads, || {
            let pq = ProductQuantizer::fit(&data, &ProductQuantizerConfig::standard(4, 8));
            let partitioner = KMeansPartitioner::fit(&data, 4, 7);
            PartitionIndex::build(partitioner, &data, DIST)
                .with_scoring(usp_index::Scoring::compressed(Arc::new(pq), 30))
        })
    };
    let reference = build(1);
    for &t in THREAD_COUNTS {
        let index = build(t);
        for bin in 0..reference.num_bins() {
            assert_eq!(
                reference.bin_codes(bin),
                index.bin_codes(bin),
                "bin {bin} codes differ at {t} threads"
            );
        }
        for qi in 0..queries.rows() {
            assert_eq!(
                reference.search(queries.row(qi), 5, 2),
                with_num_threads(t, || index.search(queries.row(qi), 5, 2)),
                "compressed search differs at {t} threads"
            );
        }
    }
}

#[test]
fn recall_sweep_is_thread_count_invariant() {
    // The batch query-scoring loop in usp-eval fans out per query; its ordered merge
    // must keep the sweep deterministic.
    let split = synthetic::sift_like(700, 10, 61).split_queries(50);
    let data = split.base.points();
    let truth = exact_knn(data, &split.queries, 10, DIST);

    let sweep = |threads: usize| {
        with_num_threads(threads, || {
            let partitioner = KMeansPartitioner::fit(data, 8, 3);
            let index = PartitionIndex::build(partitioner, data, DIST);
            usp_eval::sweep_probes(&split.queries, &truth, 10, &[1, 2, 4, 8], |q, p| {
                index.search(q, 10, p)
            })
        })
    };
    let reference = sweep(1);
    for &t in THREAD_COUNTS {
        assert_eq!(reference, sweep(t), "sweep differs at {t} threads");
    }
}

#[test]
fn serve_batch_is_bit_identical_to_per_query_searcher_results() {
    // The serving contract: QueryEngine batches are an execution strategy, never a
    // semantic change. The reference is the strictly sequential per-query Searcher
    // path on ONE thread; the engine must reproduce it bit-for-bit on every pool size
    // (CI additionally re-runs this whole suite under USP_NUM_THREADS=1 and =4).
    let split = synthetic::sift_like(800, 12, 71).split_queries(64);
    let data = split.base.points();
    let queries = &split.queries;
    let (k, probes) = (10, 3);

    let reference: Vec<_> = with_num_threads(1, || {
        let partitioner = KMeansPartitioner::fit(data, 8, 5);
        let index = PartitionIndex::build(partitioner, data, DIST);
        (0..queries.rows())
            .map(|qi| index.search(queries.row(qi), k, probes))
            .collect()
    });

    for &t in &[1usize, 4] {
        let (batch, via_trait, engine_batch, micro) = with_num_threads(t, || {
            let partitioner = KMeansPartitioner::fit(data, 8, 5);
            let index = Arc::new(PartitionIndex::build(partitioner, data, DIST));
            let batch = index.search_batch(queries, k, probes);
            let via_trait = index.with_probes(probes).search_batch(queries, k);
            let engine = QueryEngine::new(Arc::clone(&index));
            let engine_batch = engine.serve_batch(queries, &QueryOptions::new(k, probes));
            // Micro-batched single submissions must land on the same answers.
            let batcher = neural_partitioner::serve::MicroBatcher::new(
                Arc::new(QueryEngine::new(Arc::clone(&index))),
                QueryOptions::new(k, probes),
                16,
                std::time::Duration::from_millis(2),
            );
            let receivers: Vec<_> = (0..queries.rows())
                .map(|qi| batcher.submit(queries.row(qi).to_vec()))
                .collect();
            let micro: Vec<_> = receivers.into_iter().map(|rx| rx.recv().unwrap()).collect();
            (batch, via_trait, engine_batch, micro)
        });
        assert_eq!(
            reference, batch,
            "index.search_batch differs at {t} threads"
        );
        assert_eq!(
            reference, via_trait,
            "AnnSearcher batch differs at {t} threads"
        );
        assert_eq!(
            reference, engine_batch,
            "QueryEngine.serve_batch differs at {t} threads"
        );
        assert_eq!(
            reference, micro,
            "micro-batched answers differ at {t} threads"
        );
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn bucket_contents_are_thread_count_invariant(
            n in 60usize..200,
            bins in 2usize..7,
            threads in 2usize..9,
            seed in 0u64..1000,
        ) {
            let data = synthetic::blobs(n, 4, bins, 1.0, seed).points().clone();
            let build = |t: usize| {
                with_num_threads(t, || {
                    let partitioner = KMeansPartitioner::fit(&data, bins, seed);
                    PartitionIndex::build(partitioner, &data, DIST)
                })
            };
            let sequential = build(1);
            let parallel = build(threads);
            prop_assert_eq!(sequential.assignments(), parallel.assignments());
            prop_assert_eq!(sequential.num_bins(), parallel.num_bins());
            for bin in 0..sequential.num_bins() {
                prop_assert_eq!(sequential.bucket(bin), parallel.bucket(bin));
            }
        }
    }
}
