//! Integration tests over the baseline implementations: every comparator of the paper's
//! evaluation must build, index, and answer queries through the shared abstractions, and
//! the qualitative relationships the paper relies on must hold at small scale.

use usp_baselines::{
    BinaryPartitionTree, BoostedForestStrategy, CrossPolytopeLsh, HyperplaneLsh, KMeansPartitioner,
    NeuralLsh, NeuralLshConfig, RegressionLshSplit, TreeConfig,
};
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_graph::{Hnsw, HnswConfig};
use usp_index::{PartitionIndex, Partitioner, SearchResult};
use usp_linalg::Distance;
use usp_quant::{IvfConfig, IvfIndex, ScannConfig, ScannSearcher};

const DIST: Distance = Distance::SquaredEuclidean;

fn recall(results: &[Vec<usize>], truth: &[Vec<usize>]) -> f64 {
    results
        .iter()
        .zip(truth)
        .map(|(r, t)| usp_data::ground_truth::knn_accuracy(r, t))
        .sum::<f64>()
        / results.len() as f64
}

#[test]
fn every_partitioning_baseline_indexes_and_searches() {
    let split = synthetic::sift_like(1200, 12, 6).split_queries(50);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 5, DIST);
    let truth = exact_knn(data, &split.queries, 10, DIST);

    let baselines: Vec<(String, Box<dyn Partitioner>)> = vec![
        (
            "kmeans".into(),
            Box::new(KMeansPartitioner::fit(data, 8, 1)),
        ),
        (
            "cross-polytope".into(),
            Box::new(CrossPolytopeLsh::fit(data, 8, 2)),
        ),
        (
            "hyperplane-lsh".into(),
            Box::new(HyperplaneLsh::fit(data, 3, 3)),
        ),
        (
            "kd-tree".into(),
            Box::new(BinaryPartitionTree::kd(data, &TreeConfig::new(3))),
        ),
        (
            "pca-tree".into(),
            Box::new(BinaryPartitionTree::pca(data, &TreeConfig::new(3))),
        ),
        (
            "rp-tree".into(),
            Box::new(BinaryPartitionTree::random_projection(
                data,
                &TreeConfig::new(3),
            )),
        ),
        (
            "2-means-tree".into(),
            Box::new(BinaryPartitionTree::two_means(data, &TreeConfig::new(3))),
        ),
        (
            "boosted-forest".into(),
            Box::new(BinaryPartitionTree::build(
                data,
                &TreeConfig::new(3),
                &BoostedForestStrategy::new(knn.clone(), 8),
            )),
        ),
        (
            "regression-lsh".into(),
            Box::new(BinaryPartitionTree::build(
                data,
                &TreeConfig::new(3),
                &RegressionLshSplit {
                    epochs: 20,
                    ..Default::default()
                },
            )),
        ),
    ];

    for (name, partitioner) in baselines {
        let bins = partitioner.num_bins();
        let index = PartitionIndex::build(partitioner, data, DIST);
        let stats = index.balance();
        assert_eq!(stats.total, data.rows(), "{name}: lookup table lost points");

        // Probing all bins is exhaustive search: recall must be ~1.
        let results: Vec<Vec<usize>> = (0..split.queries.rows())
            .map(|qi| index.search(split.queries.row(qi), 10, bins).ids)
            .collect();
        let r = recall(&results, &truth);
        assert!(r > 0.99, "{name}: exhaustive probe recall {r}");

        // Probing a single bin must scan fewer candidates than the whole dataset.
        let single: SearchResult = index.search(split.queries.row(0), 10, 1);
        assert!(
            single.candidates_scanned < data.rows(),
            "{name}: single probe scanned everything"
        );
    }
}

#[test]
fn neural_lsh_beats_data_oblivious_lsh_at_matched_budget() {
    let split = synthetic::sift_like(1500, 16, 8).split_queries(60);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 8, DIST);
    let truth = exact_knn(data, &split.queries, 10, DIST);

    let nlsh = NeuralLsh::fit(
        data,
        &knn,
        &NeuralLshConfig {
            epochs: 30,
            ..NeuralLshConfig::small(8)
        },
    );
    let labels = nlsh.labels().to_vec();
    let nlsh_index = PartitionIndex::from_assignments(nlsh, data, labels, DIST);
    let lsh_index = PartitionIndex::build(CrossPolytopeLsh::fit(data, 8, 9), data, DIST);

    let run = |index: &dyn Fn(&[f32]) -> SearchResult| -> f64 {
        let results: Vec<Vec<usize>> = (0..split.queries.rows())
            .map(|qi| index(split.queries.row(qi)).ids)
            .collect();
        recall(&results, &truth)
    };
    let nlsh_recall = run(&|q| nlsh_index.search(q, 10, 2));
    let lsh_recall = run(&|q| lsh_index.search(q, 10, 2));
    assert!(
        nlsh_recall > lsh_recall,
        "Neural LSH ({nlsh_recall:.3}) should beat cross-polytope LSH ({lsh_recall:.3})"
    );
}

#[test]
fn graph_and_quantization_baselines_reach_high_recall() {
    let split = synthetic::sift_like(1500, 16, 10).split_queries(50);
    let data = split.base.points();
    let truth = exact_knn(data, &split.queries, 10, DIST);

    // HNSW with a generous beam.
    let hnsw = Hnsw::build(
        data,
        HnswConfig {
            m: 12,
            ef_construction: 80,
            distance: DIST,
            seed: 1,
        },
    );
    let hnsw_results: Vec<Vec<usize>> = (0..split.queries.rows())
        .map(|qi| hnsw.search(split.queries.row(qi), 10, 96).0)
        .collect();
    assert!(recall(&hnsw_results, &truth) > 0.9, "HNSW recall too low");

    // IVF probing half the lists.
    let ivf = IvfIndex::build(data, IvfConfig::new(16).with_nprobe(8));
    let ivf_results: Vec<Vec<usize>> = (0..split.queries.rows())
        .map(|qi| ivf.search_with_nprobe(split.queries.row(qi), 10, 8).ids)
        .collect();
    assert!(recall(&ivf_results, &truth) > 0.9, "IVF recall too low");

    // ScaNN-like quantized scan with exact re-ranking.
    let scann = ScannSearcher::build(
        data,
        ScannConfig {
            rerank_size: 100,
            ..ScannConfig::default()
        },
    );
    let scann_results: Vec<Vec<usize>> = (0..split.queries.rows())
        .map(|qi| scann.search_all(split.queries.row(qi), 10).ids)
        .collect();
    assert!(
        recall(&scann_results, &truth) > 0.8,
        "quantized search recall too low"
    );
}

#[test]
fn kmeans_partition_is_more_balanced_than_single_lsh_table_on_skewed_data() {
    // A dataset with one dominant cluster: K-means adapts its centroids, a random
    // hyperplane LSH table does not adapt at all. Both must still index every point.
    let ds = synthetic::MixtureSpec {
        n: 1200,
        dim: 8,
        n_clusters: 3,
        center_spread: 4.0,
        cluster_std: 0.8,
        anisotropy: 0.5,
        seed: 12,
    }
    .generate("skewed");
    let data = ds.points();
    let km = PartitionIndex::build(KMeansPartitioner::fit(data, 8, 1), data, DIST);
    let lsh = PartitionIndex::build(HyperplaneLsh::fit(data, 3, 2), data, DIST);
    assert_eq!(km.balance().total, 1200);
    assert_eq!(lsh.balance().total, 1200);
    assert!(km.balance().empty_bins <= lsh.balance().empty_bins + 1);
}
