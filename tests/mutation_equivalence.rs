//! Mutation equivalence harness: streaming inserts/deletes/compaction vs fresh builds.
//!
//! The mutation layer's contract has three levels, all pinned here against a
//! model-based reference (a plain list of live points in the canonical compaction
//! order — live base points ascending by old id, then live inserts in insertion
//! order):
//!
//! - **Uncompacted, exact mode** — a dirty index answers with the *same id set* as a
//!   fresh build over the final live point set (tie order inside the candidate
//!   stream matches too, because CSR-then-membin order equals the canonical order,
//!   but only the set is contractual). Tombstoned points never appear.
//! - **Cross-path** — on the same dirty index, the per-query `PartitionIndex::search`
//!   reference, the batched `QueryEngine`, and the `ShardedEngine` (every shard
//!   count, with and without a re-rank budget) answer **bit-identically**; an
//!   execution strategy is never a semantic change, mutated or not.
//! - **Compacted** — after folding the delta, the index answers bit-identically to
//!   `PartitionIndex::build` over the same final point set, in exact mode *and* in
//!   compressed mode with shared codebooks (compaction re-encodes through the same
//!   `CodeQuantizer`), and every CSR invariant holds by construction.
//!
//! CI re-runs the whole suite under `USP_NUM_THREADS=1` and `USP_NUM_THREADS=4`; the
//! proptests additionally pin both pool sizes inside each case.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use neural_partitioner::serve::{MicroBatcher, QueryEngine, QueryOptions, ShardedEngine};
use proptest::prelude::*;
use rayon::with_num_threads;
use usp_index::partitioner::RoundRobinPartitioner;
use usp_index::{PartitionIndex, Partitioner, Scoring, SearchResult};
use usp_linalg::{rng as lrng, Distance, Matrix};
use usp_quant::{ProductQuantizer, ProductQuantizerConfig};

const DIST: Distance = Distance::SquaredEuclidean;
/// Re-rank budget used by every compressed index in this suite (shared between the
/// mutated index and its fresh reference so the shortlist semantics line up).
const RERANK_BUDGET: usize = 16;
/// Deletes are skipped once the live set would drop below this floor, so top-k
/// searches stay meaningful for every generated workload.
const MIN_LIVE: usize = 8;

fn normal_points(n: usize, dim: usize, seed: u64) -> Matrix {
    lrng::normal_matrix(&mut lrng::seeded(seed), n, dim, 1.0)
}

/// One step of a streaming workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
    Compact,
}

/// Decodes proptest-generated `(selector, seed)` pairs into a workload: inserts in
/// the majority, deletes next, the occasional mid-stream compaction.
fn decode_ops(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, seed)| match sel % 8 {
            0..=4 => Op::Insert(seed),
            5 | 6 => Op::Delete(seed),
            _ => Op::Compact,
        })
        .collect()
}

/// The model next to the index under test: the live points in canonical compaction
/// order, each with its current global id. Applying an op updates both sides.
struct Harness {
    idx: Arc<PartitionIndex<RoundRobinPartitioner>>,
    live: Vec<(usize, Vec<f32>)>,
    dim: usize,
}

impl Harness {
    fn new(idx: PartitionIndex<RoundRobinPartitioner>, base: &Matrix) -> Self {
        let live = (0..base.rows())
            .map(|i| (i, base.row(i).to_vec()))
            .collect();
        Self {
            idx: Arc::new(idx),
            live,
            dim: base.cols(),
        }
    }

    /// Applies the workload; a deterministic function of `ops`, so two harnesses fed
    /// the same workload (e.g. the exact and compressed twins) stay in lockstep.
    fn apply(&mut self, ops: &[Op]) {
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Insert(seed) => {
                    // Mix the step number in so repeated selector seeds still yield
                    // distinct points (distance ties would weaken set comparisons).
                    let mut rng = lrng::seeded(seed ^ ((step as u64) << 32) ^ 0x5eed);
                    let p: Vec<f32> = (0..self.dim)
                        .map(|_| lrng::standard_normal(&mut rng))
                        .collect();
                    let id = self.idx.insert(&p);
                    self.live.push((id, p));
                }
                Op::Delete(sel) => {
                    if self.live.len() <= MIN_LIVE {
                        continue;
                    }
                    let at = (sel as usize) % self.live.len();
                    let (id, _) = self.live.remove(at);
                    assert!(self.idx.delete(id), "live id {id} must be deletable");
                    assert!(!self.idx.delete(id), "double delete must report false");
                }
                Op::Compact => {
                    let (new, report) = self.idx.compacted();
                    assert_eq!(report.live_points, self.live.len());
                    for (row, (id, _)) in self.live.iter_mut().enumerate() {
                        let renumbered =
                            report.id_map[*id].expect("live id survives compaction") as usize;
                        // Dense renumbering follows the canonical order, so the new
                        // id of the j-th live point is exactly j.
                        assert_eq!(renumbered, row, "renumbering left canonical order");
                        *id = renumbered;
                    }
                    assert!(!new.is_mutated(), "compaction must leave a clean index");
                    self.idx = Arc::new(new);
                }
            }
        }
    }

    /// The final live point set as a matrix, in canonical order (fresh-build input).
    fn final_points(&self) -> Matrix {
        let flat: Vec<f32> = self
            .live
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        Matrix::from_vec(self.live.len(), self.dim, flat)
    }

    /// Maps a dirty-index global id to its row in [`Self::final_points`], i.e. to the
    /// id the fresh reference build assigns the same point.
    fn to_fresh_ids(&self) -> HashMap<usize, usize> {
        self.live
            .iter()
            .enumerate()
            .map(|(row, (id, _))| (*id, row))
            .collect()
    }
}

/// CSR invariants of a clean index over `n` points: offsets monotone and covering,
/// buckets ascending, every point in exactly one bucket.
fn assert_csr_invariants<P: Partitioner>(idx: &PartitionIndex<P>, n: usize) {
    let off = idx.bin_offsets();
    assert_eq!(off[0], 0);
    assert!(off.windows(2).all(|w| w[0] <= w[1]), "offsets not monotone");
    assert_eq!(*off.last().unwrap(), n);
    let mut seen = vec![false; n];
    for b in 0..idx.num_bins() {
        let bucket = idx.bucket(b);
        assert!(
            bucket.windows(2).all(|w| w[0] < w[1]),
            "bucket {b} not strictly ascending"
        );
        for &id in bucket {
            assert!(!seen[id as usize], "id {id} in two buckets");
            seen[id as usize] = true;
        }
    }
    assert!(seen.into_iter().all(|s| s), "some point lost from the CSR");
}

/// Cross-path bit-identity on a (possibly dirty) index: searcher vs `QueryEngine` vs
/// `ShardedEngine`, unbudgeted and budgeted. Returns the per-query searcher answers.
fn assert_cross_path(
    idx: &Arc<PartitionIndex<RoundRobinPartitioner>>,
    queries: &Matrix,
    k: usize,
    probes: usize,
) -> Vec<SearchResult> {
    let per_query: Vec<SearchResult> = (0..queries.rows())
        .map(|qi| idx.search(queries.row(qi), k, probes))
        .collect();
    let opts = QueryOptions::new(k, probes);
    let engine = QueryEngine::new(Arc::clone(idx));
    assert_eq!(
        per_query,
        engine.serve_batch(queries, &opts),
        "QueryEngine diverged from the per-query searcher"
    );
    for shards in [1usize, 3] {
        let sharded = ShardedEngine::with_shards(Arc::clone(idx), shards);
        assert_eq!(
            per_query,
            sharded.serve_batch(queries, &opts),
            "ShardedEngine({shards}) diverged from the per-query searcher"
        );
    }
    // Budget semantics are defined by the unsharded engine; the sharded path must
    // replicate them through its delta-aware per-shard slicing.
    let budgeted = QueryOptions::new(k, probes).with_rerank_budget(5);
    let reference = engine.serve_batch(queries, &budgeted);
    for shards in [1usize, 3] {
        assert_eq!(
            reference,
            ShardedEngine::with_shards(Arc::clone(idx), shards).serve_batch(queries, &budgeted),
            "budgeted ShardedEngine({shards}) diverged from the unsharded engine"
        );
    }
    per_query
}

/// The full exact-mode contract for one mutated harness.
fn check_exact(h: &Harness, queries: &Matrix, k: usize, probes: usize) {
    let fresh = PartitionIndex::build(
        RoundRobinPartitioner::new(h.idx.num_bins()),
        &h.final_points(),
        DIST,
    );
    let to_fresh = h.to_fresh_ids();
    let per_query = assert_cross_path(&h.idx, queries, k, probes);
    for (qi, res) in per_query.iter().enumerate() {
        // Tombstones never surface: every returned id must map to a live point.
        let mapped: HashSet<usize> = res
            .ids
            .iter()
            .map(|id| {
                *to_fresh
                    .get(id)
                    .unwrap_or_else(|| panic!("query {qi}: dead or unknown id {id} returned"))
            })
            .collect();
        let fresh_ids: HashSet<usize> = fresh
            .search(queries.row(qi), k, probes)
            .ids
            .into_iter()
            .collect();
        assert_eq!(
            mapped, fresh_ids,
            "query {qi}: dirty id set diverged from the fresh build"
        );
    }
    // Compacting folds the delta into an index that is bit-identical to the fresh
    // build — ids included, because compaction renumbers in canonical order.
    let (compacted, _) = h.idx.compacted();
    for qi in 0..queries.rows() {
        assert_eq!(
            compacted.search(queries.row(qi), k, probes),
            fresh.search(queries.row(qi), k, probes),
            "query {qi}: compacted answer differs from the fresh build"
        );
    }
    assert_csr_invariants(&compacted, h.live.len());
}

/// The compressed-mode contract: cross-path identity while dirty, and post-compaction
/// bit-identity to a fresh compressed build sharing the *same* quantizer.
fn check_compressed(
    h: &Harness,
    pq: &Arc<ProductQuantizer>,
    queries: &Matrix,
    k: usize,
    probes: usize,
) {
    assert_cross_path(&h.idx, queries, k, probes);
    let fresh = PartitionIndex::build(
        RoundRobinPartitioner::new(h.idx.num_bins()),
        &h.final_points(),
        DIST,
    )
    .with_scoring(Scoring::compressed(
        Arc::clone(pq) as Arc<dyn usp_index::CodeQuantizer>,
        RERANK_BUDGET,
    ));
    let (compacted, _) = h.idx.compacted();
    for qi in 0..queries.rows() {
        assert_eq!(
            compacted.search(queries.row(qi), k, probes),
            fresh.search(queries.row(qi), k, probes),
            "query {qi}: compacted compressed answer differs from the fresh build"
        );
    }
    assert_csr_invariants(&compacted, h.live.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random streaming workloads (inserts, deletes, mid-stream compactions) against
    /// the model, in exact and compressed mode, under both pool sizes.
    #[test]
    fn streaming_workloads_match_fresh_builds(
        seed in 0u64..1000,
        base_n in 12usize..40,
        dim in 2usize..5,
        bins in 2usize..7,
        raw_ops in prop::collection::vec((0u8..8, 0u64..1_000_000u64), 4..16),
    ) {
        let ops = decode_ops(&raw_ops);
        let base = normal_points(base_n, dim, seed);
        let queries = normal_points(4, dim, seed.wrapping_add(101));
        // One quantizer, fit once, shared by the mutated index and its fresh
        // reference: compaction must re-encode through these exact codebooks.
        let pq = with_num_threads(1, || {
            Arc::new(ProductQuantizer::fit(&base, &ProductQuantizerConfig::standard(2, 8)))
        });
        for threads in [1usize, 4] {
            with_num_threads(threads, || {
                let mut exact = Harness::new(
                    PartitionIndex::build(RoundRobinPartitioner::new(bins), &base, DIST),
                    &base,
                );
                exact.apply(&ops);
                check_exact(&exact, &queries, 5, 3);

                let compressed_idx =
                    PartitionIndex::build(RoundRobinPartitioner::new(bins), &base, DIST)
                        .with_scoring(Scoring::compressed(
                            Arc::clone(&pq) as Arc<dyn usp_index::CodeQuantizer>,
                            RERANK_BUDGET,
                        ));
                let mut compressed = Harness::new(compressed_idx, &base);
                compressed.apply(&ops);
                check_compressed(&compressed, &pq, &queries, 5, 3);
            });
        }
    }
}

#[test]
fn compaction_threshold_and_report_bookkeeping() {
    let base = normal_points(20, 2, 3);
    let idx = PartitionIndex::build(RoundRobinPartitioner::new(3), &base, DIST)
        .with_compaction_threshold(0.25);
    assert!(
        !idx.needs_compaction(),
        "a clean index never needs compaction"
    );
    let extra = normal_points(4, 2, 77);
    let ids: Vec<usize> = (0..4).map(|i| idx.insert(extra.row(i))).collect();
    assert_eq!(
        ids,
        vec![20, 21, 22, 23],
        "insert ids are dense above base_n"
    );
    assert!(idx.delete(ids[1]), "inserted point is deletable");
    assert!(idx.delete(5), "base point is deletable");
    // Delta = 4 inserts + 1 base tombstone = 5 = 0.25 * 20: exactly at threshold.
    assert!(idx.needs_compaction());
    let stats = idx.mutation_stats();
    assert_eq!(
        (
            stats.base_points,
            stats.inserts,
            stats.live_inserts,
            stats.tombstones
        ),
        (20, 4, 3, 2)
    );

    let mut idx = idx;
    let report = idx.compact();
    assert_eq!(report.live_points, 22); // 20 - 1 dead base + 3 live inserts
    assert_eq!(report.merged_inserts, 3);
    assert_eq!(report.dropped_tombstones, 2);
    assert_eq!(report.id_map.len(), 24);
    assert!(
        report.id_map[5].is_none(),
        "deleted base id maps to nothing"
    );
    assert!(
        report.id_map[21].is_none(),
        "deleted insert maps to nothing"
    );
    assert_eq!(report.id_map.iter().flatten().count(), 22);

    assert!(!idx.is_mutated());
    assert!(!idx.needs_compaction());
    assert_eq!(idx.mutation_stats().base_points, 22);
    assert_csr_invariants(&idx, 22);
}

#[test]
fn mutated_micro_batcher_survives_submits_racing_drop() {
    // The panic-safety rework of the flusher must not regress orderly shutdown on
    // the mutated serving path: submits racing the batcher's Drop either get the
    // correct answer or a clean disconnect — never a hang, never a wrong answer.
    let base = normal_points(80, 3, 9);
    let idx = Arc::new(PartitionIndex::build(
        RoundRobinPartitioner::new(4),
        &base,
        DIST,
    ));
    let fresh = normal_points(6, 3, 10);
    for i in 0..6 {
        idx.insert(fresh.row(i));
    }
    assert!(idx.delete(12) && idx.delete(81));
    let queries = normal_points(8, 3, 11);
    let opts = QueryOptions::new(3, 2);
    let reference: Vec<SearchResult> = (0..queries.rows())
        .map(|qi| idx.search(queries.row(qi), opts.k, opts.probes))
        .collect();

    let engine = Arc::new(ShardedEngine::with_shards(Arc::clone(&idx), 3));
    let batcher = Arc::new(MicroBatcher::new(engine, opts, 8, Duration::from_millis(1)));
    let workers: Vec<_> = (0..4)
        .map(|t| {
            let batcher = Arc::clone(&batcher);
            let queries = queries.clone();
            // lint:allow(raw-thread-spawn): this test drives the batcher from real
            // concurrent submitters; routing through the pool would serialize them
            std::thread::spawn(move || {
                (0..20)
                    .map(|i| {
                        let qi = (t * 5 + i) % queries.rows();
                        (qi, batcher.submit(queries.row(qi).to_vec()))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    drop(batcher); // race shutdown against the submitting threads
    for worker in workers {
        for (qi, rx) in worker.join().expect("submitting thread must not panic") {
            // A RecvError means shutdown won the race: disconnect, not a hang.
            if let Ok(res) = rx.recv() {
                assert_eq!(res, reference[qi], "query {qi} answered wrongly");
            }
        }
    }
}
