//! Crash-recovery harness for the mutable index's write-ahead log.
//!
//! The durability contract under test: with `SyncPolicy::EveryRecord`, every
//! mutation the index *acked* (returned `Ok` for) is on storage before the ack,
//! so after a crash at **any byte offset** into the log,
//! [`PartitionIndex::recover`] rebuilds a state bit-identical to replaying
//! exactly the acked prefix — no acked op lost, no phantom op invented. The
//! headline proptest drives a random workload against a WAL-attached index,
//! snapshots the log image, cuts it at an arbitrary byte offset (the crash),
//! recovers into a fresh base, and compares search answers bit-for-bit against
//! a reference built by replaying the parsed prefix through the ordinary
//! mutation API. It then round-trips: compact (checkpoint + truncate), mutate
//! again, crash again, recover again — this time on top of the compacted base.
//! Everything runs in exact *and* compressed scoring mode, under worker pools
//! of 1 and 4 threads (CI re-runs the file under `USP_NUM_THREADS=1` and `=4`).
//!
//! The deterministic tests pin the fault-model edges from the module docs in
//! `usp-index/src/wal.rs`: a torn tail is tolerated (truncate + count), a
//! mid-log checksum mismatch is a loud [`WalError::Corrupt`], a device-full
//! torn write refuses the ack and recovery resumes past it, and a failed sync
//! poisons the log (fsyncgate) without mutating the index — cleared only by
//! the checkpoint protocol. The engine-path test pins that serving acks carry
//! durability and that WAL counters surface through `StatsSnapshot`.

use std::sync::Arc;

use neural_partitioner::serve::{QueryEngine, QueryOptions, ShardedEngine};
use proptest::prelude::*;
use rayon::with_num_threads;
use usp_index::partitioner::RoundRobinPartitioner;
use usp_index::wal::parse_log;
use usp_index::{
    FaultPlan, MemStorage, MutationError, PartitionIndex, Scoring, SyncPolicy, Wal, WalError,
    WalRecord,
};
use usp_linalg::{rng as lrng, Distance, Matrix};
use usp_quant::{ProductQuantizer, ProductQuantizerConfig};

const DIST: Distance = Distance::SquaredEuclidean;
/// Re-rank budget shared by every compressed index in this suite, so the
/// recovered index and its reference agree on shortlist semantics.
const RERANK_BUDGET: usize = 16;
/// Deletes are skipped once the live set would drop below this floor, keeping
/// top-k searches meaningful for every generated workload.
const MIN_LIVE: usize = 4;

fn normal_points(n: usize, dim: usize, seed: u64) -> Matrix {
    lrng::normal_matrix(&mut lrng::seeded(seed), n, dim, 1.0)
}

/// One step of a streaming workload. Unlike the mutation-equivalence harness
/// there is no `Compact` op: compaction is exercised explicitly as the
/// checkpoint round trip, because it truncates the log under test.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
}

/// Decodes proptest-generated `(selector, seed)` pairs: three inserts to one
/// delete, so logs grow and deletes still hit both CSR and membin slots.
fn decode_ops(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(sel, seed)| match sel % 4 {
            0..=2 => Op::Insert(seed),
            _ => Op::Delete(seed),
        })
        .collect()
}

/// A fresh clean base index over `base`, optionally in compressed mode.
fn build_base(
    bins: usize,
    base: &Matrix,
    pq: Option<&Arc<ProductQuantizer>>,
) -> PartitionIndex<RoundRobinPartitioner> {
    let idx = PartitionIndex::build(RoundRobinPartitioner::new(bins), base, DIST);
    match pq {
        Some(pq) => idx.with_scoring(Scoring::compressed(
            Arc::clone(pq) as Arc<dyn usp_index::CodeQuantizer>,
            RERANK_BUDGET,
        )),
        None => idx,
    }
}

/// Drives `ops` through the mutation API, tracking live ids so every delete is
/// valid (the WAL never logs a refused op). Deterministic in (`ops`, `salt`),
/// so the same workload can be replayed in a second round with distinct points.
/// Returns the number of ops actually applied (deletes under the floor skip).
fn apply_ops(
    idx: &PartitionIndex<RoundRobinPartitioner>,
    live: &mut Vec<usize>,
    ops: &[Op],
    dim: usize,
    salt: u64,
) -> usize {
    let mut applied = 0;
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Insert(seed) => {
                // Mix step and salt in so repeated seeds still yield distinct
                // points (distance ties would weaken bit-identity checks).
                let mut rng = lrng::seeded(seed ^ ((step as u64 + salt) << 32) ^ 0x5eed);
                let p: Vec<f32> = (0..dim).map(|_| lrng::standard_normal(&mut rng)).collect();
                let id = idx.try_insert(&p).expect("logged insert must be acked");
                live.push(id);
                applied += 1;
            }
            Op::Delete(sel) => {
                if live.len() <= MIN_LIVE {
                    continue;
                }
                let at = (sel as usize) % live.len();
                let id = live.remove(at);
                idx.try_delete(id).expect("live id must be deletable");
                applied += 1;
            }
        }
    }
    applied
}

/// The reference side: replays a parsed record stream through the ordinary
/// mutation API. Checkpoint records carry no delta and are skipped.
fn replay(idx: &PartitionIndex<RoundRobinPartitioner>, records: &[WalRecord]) {
    for rec in records {
        match rec {
            WalRecord::Insert { row } => {
                idx.try_insert(row).expect("reference insert");
            }
            WalRecord::Delete { id } => {
                idx.try_delete(*id as usize).expect("reference delete");
            }
            WalRecord::CompactionCheckpoint { .. } => {}
        }
    }
}

/// Bit-identical answers on every query — ids, distances, and order.
fn assert_bit_identical(
    a: &PartitionIndex<RoundRobinPartitioner>,
    b: &PartitionIndex<RoundRobinPartitioner>,
    queries: &Matrix,
    k: usize,
    probes: usize,
    ctx: &str,
) {
    for qi in 0..queries.rows() {
        assert_eq!(
            a.search(queries.row(qi), k, probes),
            b.search(queries.row(qi), k, probes),
            "{ctx}: query {qi} diverged from the acked-prefix reference"
        );
    }
}

/// One full crash-cut scenario: workload → crash at `cut_sel` → recover →
/// compare against the acked prefix → checkpoint round trip → second crash at
/// `cut_sel2` → recover on the compacted base → compare again.
fn check_crash_cut(
    base: &Matrix,
    queries: &Matrix,
    bins: usize,
    ops: &[Op],
    cut_sel: u64,
    cut_sel2: u64,
    pq: Option<&Arc<ProductQuantizer>>,
) {
    let dim = base.cols();

    // --- run the workload against a WAL-attached index, then "crash" -------------
    let storage = MemStorage::new();
    let idx = build_base(bins, base, pq)
        .with_wal(Wal::new(Box::new(storage.clone()), SyncPolicy::EveryRecord));
    let mut live: Vec<usize> = (0..base.rows()).collect();
    let applied = apply_ops(&idx, &mut live, ops, dim, 0);
    let image = storage.contents();
    // EveryRecord means the full image holds exactly one record per acked op.
    assert_eq!(
        parse_log(&image)
            .expect("uncut log parses clean")
            .records
            .len(),
        applied,
        "every acked op must be on storage before the ack"
    );
    drop(idx); // the crash: every volatile structure is gone, only `image` survives

    // --- cut at an arbitrary byte offset and recover ------------------------------
    let cut = (cut_sel as usize) % (image.len() + 1);
    let cut_image = image[..cut].to_vec();
    let acked =
        parse_log(&cut_image).expect("a prefix of a valid log is torn at worst, never corrupt");

    let cut_storage = MemStorage::from_bytes(cut_image);
    let (recovered, report) = PartitionIndex::recover(
        build_base(bins, base, pq),
        Wal::new(Box::new(cut_storage.clone()), SyncPolicy::EveryRecord),
    )
    .expect("recovery tolerates a torn tail");
    assert_eq!(
        report.replayed_inserts + report.replayed_deletes,
        acked.records.len() as u64,
        "recovery must replay exactly the complete records"
    );
    assert_eq!(report.torn_tail_bytes, acked.torn_bytes);
    assert_eq!(report.epoch, 0, "a never-compacted log opens at epoch 0");
    assert_eq!(
        cut_storage.contents().len() as u64,
        acked.valid_len,
        "recovery truncates the torn tail on the device"
    );

    // --- the reference: replay exactly the acked prefix ---------------------------
    let reference = build_base(bins, base, pq);
    replay(&reference, &acked.records);
    assert_bit_identical(&recovered, &reference, queries, 5, 3, "post-recovery");

    // --- round trip: checkpoint compaction, more ops, second crash, recover -------
    let mut recovered = recovered;
    recovered
        .try_compact()
        .expect("checkpoint compaction on a healthy log");
    assert_eq!(
        recovered.wal_stats().expect("wal stays attached").epoch,
        1,
        "compaction advances the checkpoint epoch"
    );
    // The second recovery's clean base: the compacted point set with its stored
    // assignments (compaction is pinned bit-identical to this rebuild by the
    // mutation-equivalence suite).
    let compacted_data = recovered.data().clone();
    let compacted_assign = recovered.assignments().to_vec();
    let rebuild = || {
        let idx = PartitionIndex::from_assignments(
            RoundRobinPartitioner::new(bins),
            &compacted_data,
            compacted_assign.clone(),
            DIST,
        );
        match pq {
            Some(pq) => idx.with_scoring(Scoring::compressed(
                Arc::clone(pq) as Arc<dyn usp_index::CodeQuantizer>,
                RERANK_BUDGET,
            )),
            None => idx,
        }
    };

    let mut live2: Vec<usize> = (0..compacted_data.rows()).collect();
    apply_ops(&recovered, &mut live2, ops, dim, 1000);
    let image2 = cut_storage.contents();
    drop(recovered);

    let cut2 = (cut_sel2 as usize) % (image2.len() + 1);
    let cut2_image = image2[..cut2].to_vec();
    let acked2 = parse_log(&cut2_image).expect("prefix cut of the post-checkpoint log");

    let (recovered2, report2) = PartitionIndex::recover(
        rebuild(),
        Wal::new(
            Box::new(MemStorage::from_bytes(cut2_image)),
            SyncPolicy::EveryRecord,
        ),
    )
    .expect("second recovery");
    // The checkpoint record leads the replaced log; it survives iff the cut
    // reaches past it, and then the recovered epoch picks it up.
    let expect_epoch = match acked2.records.first() {
        Some(WalRecord::CompactionCheckpoint { .. }) => 1,
        _ => 0,
    };
    assert_eq!(report2.epoch, expect_epoch);

    let reference2 = rebuild();
    replay(&reference2, &acked2.records);
    assert_bit_identical(
        &recovered2,
        &reference2,
        queries,
        5,
        3,
        "post-roundtrip recovery",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: for ANY workload and ANY crash offset, recovery
    /// answers bit-identically to replaying exactly the acked prefix — in exact
    /// and compressed mode, under 1- and 4-thread pools, including a
    /// recover → compact (checkpoint) → mutate → crash → recover round trip.
    #[test]
    fn recovery_equals_acked_prefix_at_any_cut(
        seed in 0u64..1000,
        base_n in 10usize..24,
        dim in 2usize..5,
        bins in 2usize..6,
        raw_ops in prop::collection::vec((0u8..4, 0u64..1_000_000u64), 4..14),
        cuts in 0u64..u64::MAX,
    ) {
        // Two independent crash offsets packed into one value (the vendored
        // proptest shim caps tuple strategies at six parameters).
        let (cut_sel, cut_sel2) = (cuts & 0xffff_ffff, cuts >> 32);
        let ops = decode_ops(&raw_ops);
        let base = normal_points(base_n, dim, seed);
        let queries = normal_points(4, dim, seed.wrapping_add(101));
        // One quantizer, fit once, shared by every index in the case: recovery
        // and compaction must re-encode through these exact codebooks.
        let pq = with_num_threads(1, || {
            Arc::new(ProductQuantizer::fit(&base, &ProductQuantizerConfig::standard(2, 8)))
        });
        for threads in [1usize, 4] {
            with_num_threads(threads, || {
                for compressed in [false, true] {
                    let pqo = if compressed { Some(&pq) } else { None };
                    check_crash_cut(&base, &queries, bins, &ops, cut_sel, cut_sel2, pqo);
                }
            });
        }
    }
}

/// A torn tail (crash mid-append) is tolerated and truncated; the same bytes
/// flipped mid-log are a loud `Corrupt`, never a silent truncation.
#[test]
fn torn_tail_is_tolerated_but_mid_log_corruption_is_fatal() {
    let base = normal_points(12, 3, 7);
    let storage = MemStorage::new();
    let idx = build_base(3, &base, None)
        .with_wal(Wal::new(Box::new(storage.clone()), SyncPolicy::EveryRecord));
    let extra = normal_points(3, 3, 8);
    for i in 0..3 {
        idx.try_insert(extra.row(i)).expect("insert");
    }
    idx.try_delete(1).expect("delete base point");
    let image = storage.contents();

    // Cut strictly inside the final record: recovery truncates and counts it.
    let torn = image[..image.len() - 3].to_vec();
    let (rec, report) = PartitionIndex::recover(
        build_base(3, &base, None),
        Wal::new(
            Box::new(MemStorage::from_bytes(torn)),
            SyncPolicy::EveryRecord,
        ),
    )
    .expect("torn tail is not corruption");
    assert_eq!(
        (report.replayed_inserts, report.replayed_deletes),
        (3, 0),
        "the torn delete must not replay"
    );
    assert!(report.torn_tail_bytes > 0);
    assert_eq!(rec.mutation_stats().inserts, 3);

    // Flip one payload byte of the FIRST record: same log length, but the
    // damage is mid-log, so recovery must refuse loudly.
    let mut bad = image;
    bad[10] ^= 0xff;
    let err = PartitionIndex::recover(
        build_base(3, &base, None),
        Wal::new(
            Box::new(MemStorage::from_bytes(bad)),
            SyncPolicy::EveryRecord,
        ),
    )
    .map(|_| ())
    .expect_err("mid-log corruption is fatal");
    assert!(
        matches!(err, WalError::Corrupt { offset: 0, .. }),
        "expected Corrupt at record offset 0, got {err:?}"
    );
}

/// Device-full torn write: the op that crossed the byte budget is refused (no
/// ack), the tail is torn, and recovery resumes with every acked op intact.
#[test]
fn device_full_tears_the_tail_and_recovery_keeps_every_acked_op() {
    let base = normal_points(10, 2, 11);
    let storage = MemStorage::new();
    // An insert record at dim 2 is 8 (header) + 1 (kind) + 4 (dim) + 8 (floats)
    // = 21 framed bytes: the first fits a 30-byte device, the second tears.
    storage.set_plan(FaultPlan {
        fail_after_bytes: Some(30),
        ..FaultPlan::default()
    });
    let idx = build_base(2, &base, None)
        .with_wal(Wal::new(Box::new(storage.clone()), SyncPolicy::EveryRecord));
    idx.try_insert(&[0.25, -0.5])
        .expect("fits under the byte budget");
    let err = idx
        .try_insert(&[0.75, 0.5])
        .expect_err("the append that crosses the budget must refuse the ack");
    assert!(matches!(err, MutationError::Wal(_)), "got {err:?}");
    let image = storage.contents();
    assert_eq!(image.len(), 30, "21 acked bytes + 9 torn bytes");

    let (rec, report) = PartitionIndex::recover(
        build_base(2, &base, None),
        Wal::new(
            Box::new(MemStorage::from_bytes(image)),
            SyncPolicy::EveryRecord,
        ),
    )
    .expect("recovery resumes past the torn write");
    assert_eq!(report.replayed_inserts, 1, "the acked insert survived");
    assert_eq!(report.torn_tail_bytes, 9);
    assert_eq!(rec.mutation_stats().inserts, 1);
}

/// A failed sync refuses the ack, leaves the index unmutated, and poisons the
/// log (fsyncgate: the storage tail is suspect) until the checkpoint protocol
/// replaces it with a fresh verified image.
#[test]
fn sync_failure_never_acks_and_poisons_until_checkpoint() {
    let base = normal_points(10, 2, 13);
    let storage = MemStorage::new();
    let idx = build_base(2, &base, None)
        .with_wal(Wal::new(Box::new(storage.clone()), SyncPolicy::EveryRecord));
    let q = [0.1f32, 0.2];
    let pre = idx.search(&q, 3, 2);

    storage.set_plan(FaultPlan {
        fail_syncs: 1,
        ..FaultPlan::default()
    });
    let err = idx
        .try_insert(&[0.5, 0.5])
        .expect_err("unsynced append never acks");
    assert!(matches!(err, MutationError::Wal(_)), "got {err:?}");
    assert!(
        !idx.is_mutated(),
        "a refused insert must not mutate the index"
    );
    assert_eq!(
        idx.search(&q, 3, 2),
        pre,
        "answers unchanged after the refusal"
    );

    // Sticky poison: the device has recovered, but the log's tail is suspect,
    // so the next append is refused without touching storage.
    assert_eq!(
        idx.try_insert(&[0.5, 0.5]),
        Err(MutationError::Wal(WalError::Poisoned))
    );
    let stats = idx.wal_stats().expect("wal attached");
    assert_eq!(stats.sync_errors, 1);

    // The checkpoint protocol writes a whole new verified image, which is the
    // documented way out of the poisoned state.
    let mut idx = idx;
    idx.try_compact().expect("checkpoint replaces the log");
    idx.try_insert(&[0.5, 0.5])
        .expect("appends resume after the checkpoint");
    assert_eq!(idx.mutation_stats().inserts, 1);
}

/// Serving acks carry durability: the engine write path refuses mutations the
/// log could not persist, and WAL/recovery counters surface in `StatsSnapshot`.
#[test]
fn engine_acks_carry_durability_and_stats_surface_wal_counters() {
    let base = normal_points(12, 2, 17);
    let storage = MemStorage::new();
    let idx = Arc::new(
        build_base(3, &base, None)
            .with_wal(Wal::new(Box::new(storage.clone()), SyncPolicy::EveryRecord)),
    );
    let engine = QueryEngine::new(Arc::clone(&idx));
    engine.insert(&[0.3, 0.4]).expect("durable insert acks");
    assert_eq!(engine.delete(2), Ok(()));
    let snap = engine.stats();
    assert_eq!((snap.inserts, snap.deletes), (1, 1));
    assert_eq!(snap.wal_appends, 2, "one record per acked mutation");
    assert!(snap.wal_bytes > 0);
    assert_eq!(snap.wal_sync_errors, 0);

    // A sync failure must become an error reply, not a silent ack, and the
    // refused op must not count as served.
    storage.set_plan(FaultPlan {
        fail_syncs: 1,
        ..FaultPlan::default()
    });
    let err = engine
        .insert(&[0.6, 0.7])
        .expect_err("failed append refuses the ack");
    assert!(matches!(err, MutationError::Wal(_)), "got {err:?}");
    let snap = engine.stats();
    assert_eq!(snap.inserts, 1, "the refused insert is not counted");
    assert_eq!(
        snap.wal_sync_errors, 1,
        "the failure is visible in serving stats"
    );

    // Recovery counters ride the same snapshot: recover from this log image
    // and serve from the recovered index.
    let image = storage.contents();
    let acked = parse_log(&image).expect("log parses clean");
    let (recovered, _) = PartitionIndex::recover(
        build_base(3, &base, None),
        Wal::new(
            Box::new(MemStorage::from_bytes(image)),
            SyncPolicy::EveryRecord,
        ),
    )
    .expect("recovery");
    let engine = QueryEngine::new(Arc::new(recovered));
    let snap = engine.stats();
    assert_eq!(snap.wal_replayed_records, acked.records.len() as u64);

    // The sharded engine overlays the same counters and keeps serving the
    // recovered state bit-identically to the unsharded path.
    let recovered = Arc::new(
        PartitionIndex::recover(
            build_base(3, &base, None),
            Wal::new(
                Box::new(MemStorage::from_bytes(storage.contents())),
                SyncPolicy::EveryRecord,
            ),
        )
        .expect("recovery")
        .0,
    );
    let sharded = ShardedEngine::with_shards(Arc::clone(&recovered), 2);
    let queries = normal_points(4, 2, 19);
    let opts = QueryOptions::new(3, 2);
    assert_eq!(
        sharded.serve_batch(&queries, &opts),
        QueryEngine::new(recovered).serve_batch(&queries, &opts),
        "sharded serving of a recovered index matches the unsharded path"
    );
    assert_eq!(
        sharded.stats().wal_replayed_records,
        acked.records.len() as u64
    );
}
