//! Compressed-domain scoring equivalence and recall harness.
//!
//! The `Scoring::Compressed` mode trades exactness for candidate-scan bandwidth, so
//! its contract has two halves pinned here:
//!
//! - **Exactness where promised** — exact-mode indexes are bit-identical to indexes
//!   built with no scoring configuration; compressed-mode answers are identical
//!   across the per-query searcher, the batched engine (every pool size) and the
//!   sharded engine (every shard count and budget), because each path re-ranks the
//!   same ADC shortlist with the same exact kernels under the same tie order.
//! - **Accuracy where approximate** — against an exact-mode index with the *same*
//!   routing, the PQ first pass keeps recall@10 ≥ 0.85 on clustered data for every
//!   `Distance` variant, and the CSR code array is exactly the quantizer's encoding
//!   of the permuted `flat` rows (the invariant the blocked ADC kernel relies on).

use std::collections::HashSet;
use std::sync::Arc;

use neural_partitioner::baselines::KMeansPartitioner;
use neural_partitioner::serve::{QueryEngine, QueryOptions, ShardedEngine};
use rayon::with_num_threads;
use usp_data::synthetic;
use usp_index::{PartitionIndex, Partitioner, Scoring};
use usp_linalg::{Distance, Matrix};
use usp_quant::{ProductQuantizer, ProductQuantizerConfig};

const ALL_DISTANCES: [Distance; 4] = [
    Distance::SquaredEuclidean,
    Distance::Euclidean,
    Distance::InnerProduct,
    Distance::Cosine,
];

/// A compressed index and its exact-mode twin sharing the same partitioner (same
/// seed → same assignment → identical routing and candidate streams).
fn twin_indexes(
    data: &Matrix,
    bins: usize,
    distance: Distance,
    rerank_budget: usize,
) -> (
    PartitionIndex<KMeansPartitioner>,
    PartitionIndex<KMeansPartitioner>,
) {
    let exact = PartitionIndex::build(KMeansPartitioner::fit(data, bins, 7), data, distance);
    let pq = ProductQuantizer::fit(data, &ProductQuantizerConfig::standard(4, 32));
    let compressed = PartitionIndex::build(KMeansPartitioner::fit(data, bins, 7), data, distance)
        .with_scoring(Scoring::compressed(Arc::new(pq), rerank_budget));
    (exact, compressed)
}

#[test]
fn compressed_recall_stays_high_for_every_distance() {
    let split = synthetic::blobs(1500, 16, 8, 2.0, 17).split_queries(30);
    let data = split.base.points();
    let (k, probes) = (10, 4);
    for distance in ALL_DISTANCES {
        let (exact, compressed) = twin_indexes(data, 16, distance, 120);
        let mut recall = 0.0;
        for qi in 0..split.queries.rows() {
            let q = split.queries.row(qi);
            let truth = exact.search(q, k, probes);
            let approx = compressed.search(q, k, probes);
            // Same routing, so the compressed pass saw exactly the candidates the
            // exact scan ranked.
            assert_eq!(approx.compressed_scanned, truth.candidates_scanned);
            let t: HashSet<usize> = truth.ids.iter().copied().collect();
            recall += approx.ids.iter().filter(|i| t.contains(i)).count() as f64 / k as f64;
        }
        recall /= split.queries.rows() as f64;
        assert!(
            recall >= 0.85,
            "compressed recall@10 for {distance:?} too low: {recall}"
        );
    }
}

#[test]
fn generous_budget_reproduces_exact_answers() {
    // A shortlist covering the whole candidate stream makes the two-phase scan
    // degenerate to an exact scan: phase 2 ranks every candidate with the exact
    // kernel under the stream-position tie order.
    let split = synthetic::blobs(700, 12, 6, 1.5, 23).split_queries(20);
    let data = split.base.points();
    let (exact, compressed) = twin_indexes(data, 8, Distance::SquaredEuclidean, 700);
    for qi in 0..split.queries.rows() {
        let q = split.queries.row(qi);
        let e = exact.search(q, 10, 3);
        let c = compressed.search(q, 10, 3);
        assert_eq!(e.ids, c.ids, "query {qi}");
        assert_eq!(c.candidates_scanned, e.candidates_scanned);
        assert_eq!(c.compressed_scanned, e.candidates_scanned);
    }
}

#[test]
fn compressed_batch_serving_matches_per_query_search_for_every_pool_size() {
    let split = synthetic::blobs(900, 12, 8, 2.0, 31).split_queries(48);
    let data = split.base.points();
    let queries = &split.queries;
    let (k, probes) = (10, 3);

    let reference: Vec<_> = with_num_threads(1, || {
        let (_, compressed) = twin_indexes(data, 10, Distance::SquaredEuclidean, 80);
        (0..queries.rows())
            .map(|qi| compressed.search(queries.row(qi), k, probes))
            .collect()
    });
    for &t in &[1usize, 2, 3, 4, 8] {
        let (batch, engine_batch) = with_num_threads(t, || {
            let (_, compressed) = twin_indexes(data, 10, Distance::SquaredEuclidean, 80);
            let compressed = Arc::new(compressed);
            let batch = compressed.search_batch(queries, k, probes);
            let engine = QueryEngine::new(Arc::clone(&compressed));
            let engine_batch = engine.serve_batch(queries, &QueryOptions::new(k, probes));
            (batch, engine_batch)
        });
        assert_eq!(reference, batch, "search_batch differs at {t} threads");
        assert_eq!(
            reference, engine_batch,
            "QueryEngine.serve_batch differs at {t} threads"
        );
    }
}

#[test]
fn sharded_compressed_engine_is_bit_identical_to_the_monolith() {
    let split = synthetic::blobs(800, 12, 8, 2.0, 41).split_queries(32);
    let data = split.base.points();
    let queries = &split.queries;
    let (_, compressed) = twin_indexes(data, 10, Distance::SquaredEuclidean, 60);
    let index = Arc::new(compressed);
    let monolith = QueryEngine::new(Arc::clone(&index));
    for shards in [1usize, 2, 4] {
        let sharded = ShardedEngine::with_shards(Arc::clone(&index), shards);
        for budget in [None, Some(15), Some(2000)] {
            let mut opts = QueryOptions::new(10, 4);
            opts.rerank_budget = budget;
            let got = sharded.serve_batch(queries, &opts);
            let expect = monolith.serve_batch(queries, &opts);
            assert_eq!(got, expect, "shards={shards} budget={budget:?}");
            // Spot-check the single-query path too.
            assert_eq!(sharded.query(queries.row(0), &opts), expect[0]);
        }
    }
}

#[test]
fn budget_counts_exact_evaluations_in_both_modes() {
    let split = synthetic::blobs(600, 8, 6, 1.5, 53).split_queries(8);
    let data = split.base.points();
    let (exact, compressed) = twin_indexes(data, 6, Distance::SquaredEuclidean, 50);
    let (k, probes, budget) = (5, 6, 37);
    for qi in 0..split.queries.rows() {
        let q = split.queries.row(qi);
        let stream = exact.search(q, k, probes).candidates_scanned;
        assert!(stream > budget, "test needs busier bins");
        // Exact mode: the budget truncates the stream prefix.
        let bins = exact.partitioner().rank_bins(q, probes);
        let e = exact.scan_bins(q, &bins, k, Some(budget));
        assert_eq!(e.candidates_scanned, budget);
        assert_eq!(e.compressed_scanned, 0);
        // Compressed mode: the same knob sizes the exactly re-ranked shortlist while
        // the ADC pass still sees the whole stream.
        let bins = compressed.partitioner().rank_bins(q, probes);
        let c = compressed.scan_bins(q, &bins, k, Some(budget));
        assert_eq!(c.candidates_scanned, budget);
        assert_eq!(c.compressed_scanned, stream);
    }
}

#[test]
fn engine_stats_expose_the_compressed_pass() {
    let split = synthetic::blobs(600, 8, 6, 1.5, 61).split_queries(16);
    let data = split.base.points();
    let (exact, compressed) = twin_indexes(data, 6, Distance::SquaredEuclidean, 40);
    let opts = QueryOptions::new(5, 4);

    let engine = QueryEngine::new(Arc::new(compressed));
    engine.serve_batch(&split.queries, &opts);
    let snap = engine.stats();
    assert!(snap.mean_compressed_candidates > snap.mean_candidates);
    assert!(
        snap.survivor_ratio > 0.0 && snap.survivor_ratio < 1.0,
        "survivor ratio {} not in (0, 1)",
        snap.survivor_ratio
    );
    let expect = snap.mean_candidates / snap.mean_compressed_candidates;
    assert!((snap.survivor_ratio - expect).abs() < 1e-12);

    // Exact engines keep the compressed telemetry at zero.
    let engine = QueryEngine::new(Arc::new(exact));
    engine.serve_batch(&split.queries, &opts);
    let snap = engine.stats();
    assert_eq!(snap.mean_compressed_candidates, 0.0);
    assert_eq!(snap.survivor_ratio, 0.0);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;
    use usp_index::CodeQuantizer;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn csr_codes_are_the_quantizers_encoding_of_the_permuted_rows(
            n in 80usize..250,
            bins in 2usize..7,
            seed in 0u64..1000,
        ) {
            let data = synthetic::blobs(n, 8, bins, 1.5, seed).points().clone();
            let pq = ProductQuantizer::fit(&data, &ProductQuantizerConfig::standard(4, 8));
            let codes_of = pq.encode_all(&data);
            let m = pq.code_len();
            let index = PartitionIndex::build(
                KMeansPartitioner::fit(&data, bins, seed),
                &data,
                Distance::SquaredEuclidean,
            )
            .with_scoring(Scoring::compressed(Arc::new(pq), 10));
            let mut covered = 0usize;
            for b in 0..index.num_bins() {
                let bucket = index.bucket(b);
                let slice = index.bin_codes(b).expect("compressed index has codes");
                prop_assert_eq!(slice.len(), bucket.len() * m, "bin {} stride", b);
                for (j, &gid) in bucket.iter().enumerate() {
                    let gid = gid as usize;
                    prop_assert_eq!(
                        &slice[j * m..(j + 1) * m],
                        &codes_of[gid * m..(gid + 1) * m],
                        "bin {} row {} != encode(point {})", b, j, gid
                    );
                }
                covered += bucket.len();
            }
            prop_assert_eq!(covered, n);
        }
    }
}
