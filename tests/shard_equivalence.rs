//! Scatter/gather equivalence harness: the sharded engine vs the monolith.
//!
//! The sharding contract extends the serving contract one level out: splitting bins
//! across shards is an *execution strategy*, never a semantic change. For every shard
//! count, pool size, and per-request knob combination, `ShardedEngine::serve_batch`
//! must answer **bit-identically** to the unsharded path — the per-query
//! `PartitionIndex::search` reference when no re-rank budget is set, and the unsharded
//! `QueryEngine` (which defines budget semantics) otherwise. CI additionally re-runs
//! this whole suite under `USP_NUM_THREADS=1` and `USP_NUM_THREADS=4`.

use std::sync::Arc;
use std::time::Duration;

use neural_partitioner::baselines::KMeansPartitioner;
use neural_partitioner::serve::{MicroBatcher, QueryEngine, QueryOptions, ShardMap, ShardedEngine};
use rayon::with_num_threads;
use usp_data::synthetic;
use usp_index::{PartitionIndex, SearchResult};
use usp_linalg::{Distance, Matrix};

const DIST: Distance = Distance::SquaredEuclidean;

/// Shard counts under test: 1 (degenerate), powers of two, and a prime that cannot
/// divide the bin count evenly.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Pool sizes the whole grid is exercised under.
const POOL_SIZES: [usize; 2] = [1, 4];

fn fixture() -> (Arc<PartitionIndex<KMeansPartitioner>>, Matrix) {
    let split = synthetic::sift_like(900, 12, 71).split_queries(48);
    let data = split.base.points();
    // Build single-threaded so every pool size sees the identical index.
    let index = with_num_threads(1, || {
        let partitioner = KMeansPartitioner::fit(data, 9, 5);
        Arc::new(PartitionIndex::build(partitioner, data, DIST))
    });
    (index, split.queries)
}

/// The strictly sequential per-query Searcher reference (no budget semantics).
fn searcher_reference(
    index: &PartitionIndex<KMeansPartitioner>,
    queries: &Matrix,
    k: usize,
    probes: usize,
) -> Vec<SearchResult> {
    with_num_threads(1, || {
        (0..queries.rows())
            .map(|qi| index.search(queries.row(qi), k, probes))
            .collect()
    })
}

#[test]
fn sharded_serve_batch_is_bit_identical_to_the_searcher_path() {
    let (index, queries) = fixture();
    for &(k, probes) in &[(10usize, 3usize), (1, 1), (5, 9), (3, 100)] {
        let reference = searcher_reference(&index, &queries, k, probes);
        let opts = QueryOptions::new(k, probes);
        for &threads in &POOL_SIZES {
            for &shards in &SHARD_COUNTS {
                let got = with_num_threads(threads, || {
                    let engine = ShardedEngine::with_shards(Arc::clone(&index), shards);
                    engine.serve_batch(&queries, &opts)
                });
                assert_eq!(
                    reference, got,
                    "sharded answers differ: shards={shards} threads={threads} k={k} probes={probes}"
                );
            }
        }
    }
}

#[test]
fn rerank_budgets_match_the_unsharded_engine_exactly() {
    let (index, queries) = fixture();
    // Budget semantics are defined by the unsharded QueryEngine (truncate the
    // bin-rank-ordered candidate list, then re-rank); the sharded path must replicate
    // them through its per-shard slicing. 0 = answer nothing, 1 = single candidate,
    // mid-range budgets cut inside a bin, huge = no-op.
    for &budget in &[0usize, 1, 7, 63, 10_000] {
        let opts = QueryOptions::new(8, 4).with_rerank_budget(budget);
        let reference = with_num_threads(1, || {
            QueryEngine::new(Arc::clone(&index)).serve_batch(&queries, &opts)
        });
        for &threads in &POOL_SIZES {
            for &shards in &SHARD_COUNTS {
                let got = with_num_threads(threads, || {
                    ShardedEngine::with_shards(Arc::clone(&index), shards)
                        .serve_batch(&queries, &opts)
                });
                assert_eq!(
                    reference, got,
                    "budgeted answers differ: shards={shards} threads={threads} budget={budget}"
                );
            }
        }
    }
}

#[test]
fn load_aware_maps_and_rebalancing_preserve_equivalence() {
    let (index, queries) = fixture();
    let opts = QueryOptions::new(6, 3);
    let reference = searcher_reference(&index, &queries, opts.k, opts.probes);

    // Record real probe skew on the monolith, then shard by it.
    let monolith = QueryEngine::new(Arc::clone(&index));
    monolith.serve_batch(&queries, &opts);
    let snapshot = monolith.stats();
    assert!(snapshot.bin_probes.iter().sum::<u64>() > 0);

    for &threads in &POOL_SIZES {
        for &shards in &SHARD_COUNTS {
            with_num_threads(threads, || {
                let map = ShardMap::from_loads(&snapshot.bin_probes, shards);
                let mut engine = ShardedEngine::new(Arc::clone(&index), map);
                assert_eq!(
                    reference,
                    engine.serve_batch(&queries, &opts),
                    "load-aware map differs: shards={shards} threads={threads}"
                );
                // Rebalance from the engine's own recorded stats and re-check: the
                // placement may move, the answers may not.
                engine.rebalance_from_stats();
                assert_eq!(
                    reference,
                    engine.serve_batch(&queries, &opts),
                    "post-rebalance answers differ: shards={shards} threads={threads}"
                );
            });
        }
    }
}

#[test]
fn micro_batched_submissions_ride_the_sharded_path_unchanged() {
    let (index, queries) = fixture();
    let opts = QueryOptions::new(5, 3);
    let reference = searcher_reference(&index, &queries, opts.k, opts.probes);
    for &threads in &POOL_SIZES {
        for &shards in &[2usize, 7] {
            let micro = with_num_threads(threads, || {
                let engine = Arc::new(ShardedEngine::with_shards(Arc::clone(&index), shards));
                let batcher =
                    MicroBatcher::new(Arc::clone(&engine), opts, 16, Duration::from_millis(2));
                let receivers: Vec<_> = (0..queries.rows())
                    .map(|qi| batcher.submit(queries.row(qi).to_vec()))
                    .collect();
                receivers
                    .into_iter()
                    .map(|rx| rx.recv().expect("flusher delivers an answer"))
                    .collect::<Vec<_>>()
            });
            assert_eq!(
                reference, micro,
                "micro-batched sharded answers differ: shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn mixed_per_request_knobs_stay_independent_across_shards() {
    let (index, queries) = fixture();
    let sharded = ShardedEngine::with_shards(Arc::clone(&index), 4);
    let monolith = QueryEngine::new(Arc::clone(&index));
    // Interleaved batches with different knobs against the same engine: each must
    // match its own reference (per-request options never leak across batches).
    let plans = [
        QueryOptions::new(1, 1),
        QueryOptions::new(10, 5).with_rerank_budget(40),
        QueryOptions::new(4, 9),
    ];
    for opts in &plans {
        assert_eq!(
            sharded.serve_batch(&queries, opts),
            monolith.serve_batch(&queries, opts),
            "knobs {opts:?} diverged"
        );
    }
}
