//! Workspace-level property-based tests on invariants that span crates: the loss, the
//! lookup-table index, and candidate retrieval must stay consistent for arbitrary
//! (seeded) clustered datasets and configurations.

use proptest::prelude::*;
use usp_core::{loss, train_partitioner, UspConfig};
use usp_data::{synthetic, KnnMatrix};
use usp_index::{PartitionIndex, Partitioner};
use usp_linalg::{stats, Distance, Matrix};

const DIST: Distance = Distance::SquaredEuclidean;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The softmax of any trained (or untrained) model is a distribution, and the lookup
    /// table built from it is a true partition: every point appears in exactly one bucket.
    #[test]
    fn lookup_table_is_a_partition(seed in 0u64..50, bins in 2usize..6) {
        let ds = synthetic::sift_like(300, 6, seed);
        let data = ds.points();
        let knn = KnnMatrix::build(data, 4, DIST);
        let cfg = UspConfig { knn_k: 4, epochs: 3, batch_size: 64, ..UspConfig::fast(bins) };
        let trained = train_partitioner(data, &knn, &cfg, None);
        let index = PartitionIndex::build(trained, data, DIST);

        let sizes = index.bucket_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), data.rows());
        let mut seen = vec![false; data.rows()];
        for b in 0..index.num_bins() {
            for &id in index.bucket(b) {
                prop_assert!(!seen[id as usize], "point {} in two buckets", id);
                seen[id as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Candidate sets grow monotonically with the probe count and eventually cover the
    /// whole dataset.
    #[test]
    fn candidates_grow_monotonically(seed in 0u64..50) {
        let ds = synthetic::sift_like(250, 5, seed);
        let data = ds.points();
        let knn = KnnMatrix::build(data, 4, DIST);
        let cfg = UspConfig { knn_k: 4, epochs: 3, batch_size: 64, ..UspConfig::fast(4) };
        let index = train_partitioner(data, &knn, &cfg, None).build_index(data, DIST);
        let q = data.row(0);
        let mut prev = 0usize;
        for probes in 1..=4 {
            let c = index.candidates(q, probes).len();
            prop_assert!(c >= prev);
            prev = c;
        }
        prop_assert_eq!(prev, data.rows());
    }

    /// The unsupervised loss gradient always has the "rows sum to ~0" structure of a
    /// softmax cross-entropy gradient when eta = 0, and stays finite for any eta.
    #[test]
    fn loss_gradient_structure(seed in 0u64..200, eta in 0.0f32..30.0, batch in 2usize..12, bins in 2usize..8) {
        let mut rng = usp_linalg::rng::seeded(seed);
        let logits = usp_linalg::rng::normal_matrix(&mut rng, batch, bins, 1.5);
        let nb: Vec<usize> = (0..batch * 4).map(|i| (i * 13 + seed as usize) % bins).collect();
        let targets = loss::neighbor_bin_targets(&nb, batch, 4, bins, true);
        let (value, grad) = loss::unsupervised_loss(&logits, &targets, None, eta);
        prop_assert!(value.total.is_finite());
        prop_assert!(grad.as_slice().iter().all(|g| g.is_finite()));
        if eta == 0.0 {
            for i in 0..batch {
                let s: f32 = grad.row(i).iter().sum();
                prop_assert!(s.abs() < 1e-4);
            }
        }
    }

    /// Bin scores produced by a trained partitioner are valid probability distributions
    /// for arbitrary query points (including points far outside the data range).
    #[test]
    fn bin_scores_are_distributions(seed in 0u64..50, qx in -100f32..100.0, qy in -100f32..100.0) {
        let ds = synthetic::sift_like(200, 2, seed);
        let knn = KnnMatrix::build(ds.points(), 4, DIST);
        let cfg = UspConfig { knn_k: 4, epochs: 3, batch_size: 64, ..UspConfig::fast(4) };
        let trained = train_partitioner(ds.points(), &knn, &cfg, None);
        let scores = trained.bin_scores(&[qx, qy]);
        prop_assert_eq!(scores.len(), 4);
        let sum: f32 = scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-3);
        prop_assert!(scores.iter().all(|&s| (0.0..=1.0 + 1e-5).contains(&s)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Balance statistics and the expected candidate size agree on the balanced optimum.
    #[test]
    fn perfectly_balanced_partition_minimises_expected_candidates(bins in 1usize..32, per in 1usize..64) {
        let sizes = vec![per; bins];
        let ecs = usp_index::balance::expected_candidate_size(&sizes);
        prop_assert!((ecs - per as f64).abs() < 1e-9);
        let stats = usp_index::balance::BalanceStats::from_sizes(&sizes);
        prop_assert!((stats.imbalance - 1.0).abs() < 1e-9);
    }

    /// Softmax rows of arbitrary logits matrices stay distributions after the shared
    /// helper is applied (used by every model in the workspace).
    #[test]
    fn softmax_rows_matrix_invariant(rows in 1usize..10, cols in 1usize..10, seed in 0u64..100) {
        let m = usp_linalg::rng::normal_matrix(&mut usp_linalg::rng::seeded(seed), rows, cols, 3.0);
        let p: Matrix = stats::softmax_rows(&m);
        for i in 0..rows {
            let s: f32 = p.row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
        }
    }
}
