//! Cross-crate integration tests: dataset generation → ground truth → training → index →
//! online queries, exercised through the root crate's re-exported public API exactly as a
//! downstream user would.

use neural_partitioner::core::{train_partitioner, UspConfig, UspEnsemble};
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_index::Partitioner;
use usp_linalg::Distance;

const DIST: Distance = Distance::SquaredEuclidean;

fn workload(n: usize, dim: usize, queries: usize, seed: u64) -> usp_data::SplitDataset {
    synthetic::sift_like(n + queries, dim, seed).split_queries(queries)
}

fn mean_recall(results: &[Vec<usize>], truth: &[Vec<usize>]) -> f64 {
    results
        .iter()
        .zip(truth)
        .map(|(r, t)| usp_data::ground_truth::knn_accuracy(r, t))
        .sum::<f64>()
        / results.len() as f64
}

#[test]
fn offline_and_online_phases_work_end_to_end() {
    let split = workload(1500, 16, 80, 1);
    let data = split.base.points();

    // Offline phase: the k'-NN matrix is the only preprocessing (Algorithm 1 step 1).
    let knn = KnnMatrix::build(data, 10, DIST);
    assert_eq!(knn.len(), data.rows());

    // Train the partition with the unsupervised loss (steps 2-3).
    let cfg = UspConfig {
        knn_k: 10,
        epochs: 25,
        ..UspConfig::fast(8)
    };
    let trained = train_partitioner(data, &knn, &cfg, None);
    let index = trained.build_index(data, DIST);
    assert_eq!(index.num_bins(), 8);
    assert_eq!(index.assignments().len(), data.rows());

    // Online phase: recall grows with the number of probed bins and reaches ~1.0 when all
    // bins are probed (the candidate set is then the whole dataset).
    let truth = exact_knn(data, &split.queries, 10, DIST);
    let run = |probes: usize| -> (f64, f64) {
        let mut results = Vec::new();
        let mut candidates = 0usize;
        for qi in 0..split.queries.rows() {
            let res = index.search(split.queries.row(qi), 10, probes);
            candidates += res.candidates_scanned;
            results.push(res.ids);
        }
        (
            mean_recall(&results, &truth),
            candidates as f64 / split.queries.rows() as f64,
        )
    };
    let (recall_1, cand_1) = run(1);
    let (recall_all, cand_all) = run(8);
    assert!(
        recall_all > 0.99,
        "probing every bin must be exact, got {recall_all}"
    );
    assert!((cand_all - data.rows() as f64).abs() < 1e-6);
    assert!(
        recall_1 > 0.3,
        "single-probe recall {recall_1} too low for clustered data"
    );
    assert!(cand_1 < cand_all, "single probe must scan fewer candidates");
}

#[test]
fn ensemble_improves_over_single_model_at_equal_probes() {
    let split = workload(1500, 16, 80, 2);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 10, DIST);
    let truth = exact_knn(data, &split.queries, 10, DIST);
    let cfg = UspConfig {
        knn_k: 10,
        epochs: 20,
        ..UspConfig::fast(8)
    };

    let single = UspEnsemble::train(data, &knn, &cfg, 1, DIST);
    let triple = UspEnsemble::train(data, &knn, &cfg, 3, DIST);

    let recall = |ens: &UspEnsemble, probes: usize| -> f64 {
        let results: Vec<Vec<usize>> = (0..split.queries.rows())
            .map(|qi| {
                ens.search_with_probes(split.queries.row(qi), 10, probes)
                    .ids
            })
            .collect();
        mean_recall(&results, &truth)
    };
    // The ensemble picks the most confident of three complementary partitions per query;
    // it must not hurt, and usually helps (the paper reports up to ~10% at 16 bins).
    let r1 = recall(&single, 2);
    let r3 = recall(&triple, 2);
    assert!(
        r3 + 0.02 >= r1,
        "ensemble recall {r3} clearly worse than single-model {r1}"
    );
}

#[test]
fn learned_partition_beats_data_oblivious_lsh() {
    let split = workload(1600, 16, 80, 3);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 10, DIST);
    let truth = exact_knn(data, &split.queries, 10, DIST);

    let cfg = UspConfig {
        knn_k: 10,
        epochs: 25,
        ..UspConfig::fast(16)
    };
    let usp_index = train_partitioner(data, &knn, &cfg, None).build_index(data, DIST);
    let lsh_index = usp_index::PartitionIndex::build(
        usp_baselines::CrossPolytopeLsh::fit(data, 16, 5),
        data,
        DIST,
    );

    // Compare recall at a roughly matched candidate budget (2 probed bins each; both
    // partitions are roughly balanced so the budgets are comparable).
    let recall = |index: &dyn Fn(&[f32]) -> usp_index::SearchResult| -> f64 {
        let results: Vec<Vec<usize>> = (0..split.queries.rows())
            .map(|qi| index(split.queries.row(qi)).ids)
            .collect();
        mean_recall(&results, &truth)
    };
    let usp_recall = recall(&|q| usp_index.search(q, 10, 2));
    let lsh_recall = recall(&|q| lsh_index.search(q, 10, 2));
    assert!(
        usp_recall > lsh_recall,
        "learned partition ({usp_recall:.3}) should beat cross-polytope LSH ({lsh_recall:.3}) on clustered data"
    );
}

#[test]
fn pipeline_composition_with_quantizer_preserves_most_recall() {
    let split = workload(1800, 16, 60, 4);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 10, DIST);
    let truth = exact_knn(data, &split.queries, 10, DIST);
    let cfg = UspConfig {
        knn_k: 10,
        epochs: 20,
        ..UspConfig::fast(8)
    };
    let partitioner = train_partitioner(data, &knn, &cfg, None);

    // Build the exact index first, then the quantized pipeline from the same partitioner
    // family (fresh training with the same seed gives the same model).
    let exact_index = train_partitioner(data, &knn, &cfg, None).build_index(data, DIST);
    let pipeline = neural_partitioner::core::pipeline::usp_plus_scann(partitioner, data, 4);

    let mut exact_recall = 0.0;
    let mut quant_recall = 0.0;
    for qi in 0..split.queries.rows() {
        let e = exact_index.search(split.queries.row(qi), 10, 4);
        let qv = pipeline.search_with_probes(split.queries.row(qi), 10, 4);
        exact_recall += usp_data::ground_truth::knn_accuracy(&e.ids, &truth[qi]);
        quant_recall += usp_data::ground_truth::knn_accuracy(&qv.ids, &truth[qi]);
    }
    let n = split.queries.rows() as f64;
    let (exact_recall, quant_recall) = (exact_recall / n, quant_recall / n);
    assert!(
        quant_recall > exact_recall * 0.75,
        "quantized pipeline recall {quant_recall:.3} lost too much vs exact re-ranking {exact_recall:.3}"
    );
}

#[test]
fn learned_partition_beats_random_candidates_at_equal_budget() {
    let split = workload(1500, 16, 80, 6);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 10, DIST);
    let truth = exact_knn(data, &split.queries, 10, DIST);

    // Full vertical slice: usp-core training -> PartitionIndex -> online search.
    let cfg = UspConfig {
        knn_k: 10,
        epochs: 25,
        ..UspConfig::fast(8)
    };
    let index = train_partitioner(data, &knn, &cfg, None).build_index(data, DIST);

    // Baseline: re-rank a uniformly random candidate set of the same size the index
    // scanned for that query. Any partition that learned anything must beat it.
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut usp_recall = 0.0;
    let mut random_recall = 0.0;
    for qi in 0..split.queries.rows() {
        let res = index.search(split.queries.row(qi), 10, 1);
        usp_recall += usp_data::ground_truth::knn_accuracy(&res.ids, &truth[qi]);

        let budget = res.candidates_scanned.max(10);
        let candidates: Vec<u32> = (0..budget)
            .map(|_| rng.random_range(0..data.rows()) as u32)
            .collect();
        let random_ids =
            usp_index::rerank::rerank(data, split.queries.row(qi), &candidates, 10, DIST);
        random_recall += usp_data::ground_truth::knn_accuracy(&random_ids, &truth[qi]);
    }
    let n = split.queries.rows() as f64;
    let (usp_recall, random_recall) = (usp_recall / n, random_recall / n);
    assert!(
        usp_recall > random_recall,
        "recall@10 of the learned partition ({usp_recall:.3}) must beat re-ranking the same \
         number of uniformly random candidates ({random_recall:.3})"
    );
}

#[test]
fn partitioner_trait_objects_are_interchangeable() {
    let split = workload(900, 8, 40, 5);
    let data = split.base.points();
    let knn = KnnMatrix::build(data, 5, DIST);
    let usp = train_partitioner(
        data,
        &knn,
        &UspConfig {
            knn_k: 5,
            epochs: 10,
            ..UspConfig::fast(4)
        },
        None,
    );
    let kmeans = usp_baselines::KMeansPartitioner::fit(data, 4, 1);

    let methods: Vec<Box<dyn Partitioner>> = vec![Box::new(usp), Box::new(kmeans)];
    for m in &methods {
        assert_eq!(m.num_bins(), 4);
        let scores = m.bin_scores(data.row(0));
        assert_eq!(scores.len(), 4);
        let ranked = m.rank_bins(data.row(0), 4);
        assert_eq!(ranked[0], m.assign(data.row(0)));
    }
}
