//! Warm-up contract: `warm_up` pre-spawns the persistent pool's workers, so the first
//! batch served afterwards creates **no** new worker threads.
//!
//! This lives in its own integration-test binary on purpose: the worker pool is
//! process-global and `rayon::pool_worker_count()` counts every worker ever spawned,
//! so exact-count assertions are only deterministic when nothing else in the process
//! runs parallel regions concurrently. Keep this file to a single `#[test]`.

use std::sync::Arc;

use neural_partitioner::baselines::KMeansPartitioner;
use neural_partitioner::serve::{QueryEngine, QueryOptions, ShardedEngine};
use rayon::{pool_worker_count, with_num_threads};
use usp_data::synthetic;
use usp_index::PartitionIndex;
use usp_linalg::Distance;

#[test]
fn warm_up_prespawns_the_pool_so_serving_never_does() {
    // Build everything under a 1-thread override: every region runs inline, so the
    // pool stays empty and the counts below start from a known state.
    let (index, queries) = with_num_threads(1, || {
        let split = synthetic::sift_like(500, 8, 31).split_queries(32);
        let data = split.base.points();
        let partitioner = KMeansPartitioner::fit(data, 6, 3);
        let index = Arc::new(PartitionIndex::build(
            partitioner,
            data,
            Distance::SquaredEuclidean,
        ));
        (index, split.queries)
    });
    assert_eq!(
        pool_worker_count(),
        0,
        "1-thread regions must not spawn pool workers"
    );

    let engine = QueryEngine::new(Arc::clone(&index));
    let opts = QueryOptions::new(5, 3);

    // A 1-thread warm-up is a no-op: the caller IS the whole pool.
    with_num_threads(1, || engine.warm_up());
    assert_eq!(pool_worker_count(), 0);

    with_num_threads(4, || {
        // Warm-up on a 4-thread pool spawns exactly the 3 helper workers.
        engine.warm_up();
        assert_eq!(
            pool_worker_count(),
            3,
            "warm_up must pre-spawn pool-size - 1 helper workers"
        );

        // The first real batch after warm-up reuses them: no new threads.
        let batch = engine.serve_batch(&queries, &opts);
        assert_eq!(
            pool_worker_count(),
            3,
            "serve_batch after warm_up must not spawn workers"
        );

        // Same for the sharded engine (construction included — shard views build on
        // the already-warm pool).
        let sharded = ShardedEngine::with_shards(Arc::clone(&index), 3);
        sharded.warm_up(); // idempotent: workers already exist
        assert_eq!(pool_worker_count(), 3);
        let sharded_batch = sharded.serve_batch(&queries, &opts);
        assert_eq!(
            pool_worker_count(),
            3,
            "sharded serve_batch after warm_up must not spawn workers"
        );

        // Sanity: the served answers are still the real ones.
        for qi in 0..queries.rows() {
            let expect = index.search(queries.row(qi), opts.k, opts.probes);
            assert_eq!(batch[qi], expect);
            assert_eq!(sharded_batch[qi], expect);
        }
    });

    // Pools larger than a region's block cap must still be fully provisioned: a dummy
    // warm region tops out at its block count, which is why warm_up spawns workers
    // directly (`rayon::prespawn_workers`). 100 > the shim's 64-block ceiling.
    with_num_threads(100, || {
        engine.warm_up();
        assert_eq!(
            pool_worker_count(),
            99,
            "warm_up must provision the whole pool, not just one region's block count"
        );
        engine.serve_batch(&queries, &opts);
        assert_eq!(pool_worker_count(), 99);
    });
}
