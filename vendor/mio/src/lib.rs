//! Offline stand-in for the subset of `mio` used by `usp-serve`'s network ingress:
//! a readiness poller over Linux `epoll`, with mio-0.6-style direct registration
//! (`Poll::register`/`reregister`/`deregister` instead of the 0.8 `Registry`
//! split — the ingress loop is single-threaded, so the split buys nothing).
//!
//! The build environment has no crates.io access and therefore no `libc` crate;
//! the three `epoll` entry points (plus `close`) are declared directly against the
//! C library every Linux Rust binary already links. Readiness is **level-triggered**
//! (no `EPOLLET`): a socket with unread bytes or writable space keeps reporting
//! until the condition clears, so a handler that processes *some* of the data and
//! returns is always woken again — the simplest loop shape to keep correct.
//!
//! Deviation from real mio, on purpose: error/hang-up conditions (`EPOLLERR`,
//! `EPOLLHUP`, `EPOLLRDHUP`) are folded into [`Event::is_readable`] /
//! [`Event::is_writable`] instead of dedicated accessors, so the caller's next
//! `read`/`write` observes the failure (`Ok(0)` or an error) and handles it on its
//! normal path. mio 0.6 behaved the same way.

use std::io;
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

// Linux ABI constants (asm-generic/x86_64 values; stable kernel ABI).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// Kernel `struct epoll_event`. On x86-64 the kernel declares it packed
/// (`__attribute__((packed))`); on other architectures it uses natural alignment.
/// Fields are only ever read by value (never by reference), so the packed layout
/// is safe to use from Rust.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

/// Caller-chosen identifier attached to a registration and echoed in every
/// [`Event`] for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness interest set: [`Interest::READABLE`], [`Interest::WRITABLE`], or
/// their combination via [`Interest::add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Union of two interest sets (`READABLE.add(WRITABLE)`).
    // Real mio names this `add` (not a `BitOr` impl); keep the signature identical.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }
}

/// An epoll instance. `register`/`reregister`/`deregister` take `&self` (the
/// kernel serialises `epoll_ctl`); `poll` takes `&mut self` like mio's.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: epoll_create1 takes no pointers; a negative return is an error
        // reported through errno, checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
        let mut ev = event.unwrap_or(EpollEvent { events: 0, data: 0 });
        // SAFETY: `ev` lives across the call and the kernel only reads it for
        // ADD/MOD (DEL ignores the pointer); `fd` and `self.epfd` are open
        // descriptors owned by the caller / this Poll.
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Starts watching `source` for `interest`, tagging its events with `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            source.as_raw_fd(),
            Some(EpollEvent {
                events: interest.0,
                data: token.0 as u64,
            }),
        )
    }

    /// Replaces the interest/token of an already-registered `source`.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            source.as_raw_fd(),
            Some(EpollEvent {
                events: interest.0,
                data: token.0 as u64,
            }),
        )
    }

    /// Stops watching `source` entirely.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Blocks until at least one registered source is ready, `timeout` elapses
    /// (`None` = forever), or a signal arrives (`EINTR` is swallowed and reported
    /// as zero events, like mio). Ready events replace `events`' previous
    /// contents.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        // Round sub-millisecond timeouts *up* so `Some(50µs)` cannot spin as an
        // accidental busy-wait at timeout 0.
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                let ms = if ms == 0 && d.as_nanos() > 0 { 1 } else { ms };
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        events.len = 0;
        // SAFETY: `events.buf` is a live allocation of `capacity()` EpollEvents;
        // the kernel writes at most `maxevents` entries and the return value is
        // the count of initialised entries, recorded as `events.len` below.
        let rc = unsafe {
            epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as c_int,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        events.len = rc as usize;
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by epoll_create1 and is closed exactly once
        // (Drop runs once); the result is ignored as there is no way to report it.
        unsafe {
            close(self.epfd);
        }
    }
}

/// Buffer `Poll::poll` fills with ready events. (No `Debug` impl: the kernel
/// event struct is packed on x86-64, and a derived impl would take references to
/// its fields.)
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll call (level-triggered
    /// registrations re-report anything that did not fit).
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// The events delivered by the last poll, in kernel order.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            // Copy out of the (possibly packed) kernel struct by value.
            events: e.events,
            token: Token(e.data as usize),
        })
    }
}

/// One readiness event: which registration (token) and which directions.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    events: u32,
    token: Token,
}

impl Event {
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable — including error/hang-up conditions, so the caller's next `read`
    /// observes `Ok(0)` or the error on its normal path.
    pub fn is_readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }

    /// Writable — including error conditions, surfaced by the next `write`.
    pub fn is_writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn poll_until(
        poll: &mut Poll,
        events: &mut Events,
        mut pred: impl FnMut(&Event) -> bool,
    ) -> bool {
        // Bounded retries: readiness on loopback is fast but not instant.
        for _ in 0..100 {
            poll.poll(events, Some(Duration::from_millis(20))).unwrap();
            if events.iter().any(|e| pred(&e)) {
                return true;
            }
        }
        false
    }

    #[test]
    fn listener_reports_readable_on_pending_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        poll.register(&listener, Token(7), Interest::READABLE)
            .unwrap();

        // Nothing pending yet: a short poll returns no events.
        poll.poll(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(events.iter().count(), 0);

        let _client = TcpStream::connect(addr).unwrap();
        assert!(
            poll_until(&mut poll, &mut events, |e| e.token() == Token(7)
                && e.is_readable()),
            "listener never became readable after a connect"
        );
    }

    #[test]
    fn stream_readiness_follows_reregistration_and_deregistration() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);

        // A fresh connected socket is writable but not readable.
        poll.register(
            &server,
            Token(1),
            Interest::READABLE.add(Interest::WRITABLE),
        )
        .unwrap();
        assert!(poll_until(&mut poll, &mut events, |e| e.token()
            == Token(1)
            && e.is_writable()));
        assert!(!events
            .iter()
            .any(|e| e.is_readable() && e.token() == Token(1)));

        // Reregister for reads only, then make it readable.
        poll.reregister(&server, Token(2), Interest::READABLE)
            .unwrap();
        (&client).write_all(b"ping").unwrap();
        assert!(
            poll_until(&mut poll, &mut events, |e| e.token() == Token(2)
                && e.is_readable()),
            "reregistered stream never reported readable"
        );

        // After deregistration the readable socket reports nothing.
        poll.deregister(&server).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(events.iter().count(), 0);
    }
}
