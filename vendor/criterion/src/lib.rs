//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build container has no crates.io access, so external dependencies are vendored as
//! minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). This harness keeps
//! the workspace's seven benches compiling and runnable: it calibrates an iteration count
//! per benchmark so each sample takes a few milliseconds, collects `sample_size` samples,
//! and prints min/mean/max nanoseconds per iteration. No statistics beyond that — swap in
//! real criterion for publication-grade numbers.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches here use `std::hint` directly).
pub use std::hint::black_box;

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);
const MAX_BENCH_TIME: Duration = Duration::from_secs(3);

/// Top-level bench context. Mirrors the tiny subset of criterion's `Criterion` the
/// workspace uses: `default()`, `sample_size(..)`, `bench_function`, `benchmark_group`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, self.sample_size, &mut f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the sample count for the rest of this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Runs `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&full, self.criterion.sample_size, &mut f);
    }

    /// Runs `group/id`, handing `input` through to the closure.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_one(&full, self.criterion.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (printing happens eagerly; nothing left to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier, usually built from the swept parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Anything acceptable as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of a calibrated iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample takes long
        // enough to be measurable.
        let mut iters = 1u64;
        let calibration_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME
                || calibration_start.elapsed() >= MAX_BENCH_TIME / 2
                || iters >= 1 << 30
            {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;

        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
            if bench_start.elapsed() >= MAX_BENCH_TIME {
                break;
            }
        }
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<40} (no samples — closure never called Bencher::iter)");
        return;
    }
    let per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / b.iters_per_sample as f64)
        .collect();
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<40} time: [{} {} {}] ({} samples x {} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        per_iter.len(),
        b.iters_per_sample,
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Mirrors criterion's `criterion_group!`, both the simple and the `name/config/targets`
/// forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_ids_accept_parameters() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        for k in [1usize, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
                b.iter(|| std::hint::black_box(k * 2))
            });
        }
        group.finish();
    }
}
