//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build container has no crates.io access, so external dependencies are vendored as
//! minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). This one runs each
//! `proptest!` test as `cases` randomized executions with a seed derived from the test's
//! module path — deterministic run-to-run, so CI failures reproduce locally.
//!
//! On failure the harness **shrinks** the counterexample before reporting it: integer
//! (and therefore seed) strategies binary-search toward the lower bound of their range,
//! float strategies bisect toward the bound (trying the bound and `0.0` first), vectors
//! shrink by minimal failing prefix → single-element deletions → element-wise
//! shrinking, and tuples shrink component-wise while holding the other components
//! fixed. The reported minimal case is exact when the failure region is upward-closed
//! (`fails for all x >= c`, the common case for sizes, counts and seeds) and is
//! otherwise still a genuine failing input.
//!
//! Supported surface: `proptest! { #![proptest_config(ProptestConfig::with_cases(N))]
//! #[test] fn name(arg in strategy, ...) { ... } }`, `prop_assert!`, `prop_assert_eq!`,
//! numeric-range strategies, tuples of strategies, and `prop::collection::vec`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized executions per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The failure type `prop_assert!` produces inside a test body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Result alias mirroring proptest's.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG: FNV-1a hash of the fully-qualified test name as the seed.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Turns the caught outcome of one test-case execution into `Some(failure text)`
/// (`None` = the case passed). Used by the `proptest!` expansion; panics inside the body
/// count as failures so panicking cases shrink too.
#[doc(hidden)]
pub fn outcome_failure(outcome: std::thread::Result<TestCaseResult>) -> Option<String> {
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(e)) => Some(e.to_string()),
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "test body panicked".into()),
        ),
    }
}

/// Pins a closure's argument type to `S::Value` so `proptest!`-generated closures can
/// call methods on the sampled values (closure parameter types cannot otherwise be
/// inferred before the first call).
#[doc(hidden)]
pub fn bind<S: Strategy, R, F: Fn(&S::Value) -> R>(_strategies: &S, f: F) -> F {
    f
}

/// Silences panic reporting *for the current thread* while `f` runs. Shrinking replays
/// a panicking test body dozens of times; without this every binary-search probe would
/// print a full panic report (and backtrace) to stderr, burying the minimal
/// counterexample.
///
/// Implementation: a delegating hook is installed once per process; it consults a
/// thread-local flag and forwards to the previously-installed hook unless the panicking
/// thread asked for quiet. Concurrently failing tests on other threads therefore keep
/// their normal panic output, and a drop guard clears the flag even if `f` unwinds.
#[doc(hidden)]
pub fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    use std::cell::Cell;

    thread_local! {
        static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL_FILTER: std::sync::Once = std::sync::Once::new();
    INSTALL_FILTER.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let quiet = QUIET_PANICS.try_with(Cell::get).unwrap_or(false);
            if !quiet {
                previous(info);
            }
        }));
    });

    struct Guard {
        prev: bool,
    }
    impl Drop for Guard {
        fn drop(&mut self) {
            let _ = QUIET_PANICS.try_with(|c| c.set(self.prev));
        }
    }
    let _guard = Guard {
        prev: QUIET_PANICS.with(|c| c.replace(true)),
    };
    f()
}

/// A value generator with optional shrinking.
pub trait Strategy {
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Shrinks a failing value to a smaller failing value. `still_fails(v)` must return
    /// `true` exactly when `v` reproduces the failure; implementations may only return
    /// values for which `still_fails` returned `true` (or `failing` itself). The default
    /// performs no shrinking.
    fn shrink(
        &self,
        failing: Self::Value,
        still_fails: &mut dyn FnMut(&Self::Value) -> bool,
    ) -> Self::Value {
        let _ = still_fails;
        failing
    }
}

/// Binary-search shrinking for integer ranges: smallest `v` in `[lo, failing]` such that
/// `still_fails(v)`, assuming upward-closed failure; otherwise some failing value that
/// every probe confirmed. Arithmetic in `i128` so extreme signed bounds cannot overflow.
macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
            fn shrink(&self, failing: $t, still_fails: &mut dyn FnMut(&$t) -> bool) -> $t {
                binary_search_shrink(self.start, failing, still_fails)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
            fn shrink(&self, failing: $t, still_fails: &mut dyn FnMut(&$t) -> bool) -> $t {
                binary_search_shrink(*self.start(), failing, still_fails)
            }
        }
    )*};
}

/// Shared binary-search core, generic over the integer type via `i128` widening.
fn binary_search_shrink<T>(lo_bound: T, failing: T, still_fails: &mut dyn FnMut(&T) -> bool) -> T
where
    T: Copy + PartialOrd + TryInto<i128> + TryFrom<i128>,
{
    let to_wide = |v: T| -> i128 {
        v.try_into()
            .unwrap_or_else(|_| unreachable!("integer fits i128"))
    };
    let from_wide = |v: i128| -> T {
        T::try_from(v).unwrap_or_else(|_| unreachable!("midpoint stays within the range"))
    };
    let mut lo = to_wide(lo_bound);
    let mut hi = to_wide(failing);
    // Invariant: `hi` fails. Probe midpoints; a failing midpoint becomes the new `hi`,
    // a passing one raises `lo` past itself.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if still_fails(&from_wide(mid)) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    from_wide(hi)
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Float ranges shrink by bisection toward the range's lower bound: after trying the
/// bound itself (and `0.0` when it lies between the bound and the failing value), the
/// boundary of an upward-closed failure region is located to within a fixed number of
/// bisection steps — floats have no canonical minimal counterexample, so "within float
/// precision of the boundary" is the reported minimum.
macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
            fn shrink(&self, failing: $t, still_fails: &mut dyn FnMut(&$t) -> bool) -> $t {
                float_bisect_shrink(self.start as f64, failing as f64, &mut |v| {
                    still_fails(&(*v as $t))
                }) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
            fn shrink(&self, failing: $t, still_fails: &mut dyn FnMut(&$t) -> bool) -> $t {
                float_bisect_shrink(*self.start() as f64, failing as f64, &mut |v| {
                    still_fails(&(*v as $t))
                }) as $t
            }
        }
    )*};
}
impl_strategy_for_float_range!(f32, f64);

/// Bisection core for float shrinking (computed in `f64` for both float widths).
/// Invariant: `hi` fails. Returns a value for which `still_fails` held (or `failing`).
fn float_bisect_shrink(
    lo_bound: f64,
    failing: f64,
    still_fails: &mut dyn FnMut(&f64) -> bool,
) -> f64 {
    if !failing.is_finite() || !lo_bound.is_finite() {
        return failing;
    }
    let mut hi = failing;
    // The two canonical minima first: the lower bound, then zero when it is inside
    // [lo_bound, failing).
    if still_fails(&lo_bound) {
        return lo_bound;
    }
    let mut lo = lo_bound;
    if lo_bound < 0.0 && 0.0 < hi && still_fails(&0.0) {
        hi = 0.0; // zero fails: tighten the failing end, the bound keeps passing
    }
    // `lo` passes, `hi` fails: 64 bisection steps pin the boundary to float precision.
    for _ in 0..64 {
        let mid = lo + (hi - lo) / 2.0;
        if mid <= lo || mid >= hi {
            break; // interval no longer representable
        }
        if still_fails(&mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

/// Component-wise tuple shrinking: each component binary-searches while the others are
/// pinned at their current values (one pass, left to right).
macro_rules! impl_strategy_for_tuple {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(
                &self,
                failing: Self::Value,
                still_fails: &mut dyn FnMut(&Self::Value) -> bool,
            ) -> Self::Value {
                let mut current = failing;
                $(
                    current.$idx = self.$idx.shrink(current.$idx.clone(), &mut |cand| {
                        let mut probe = current.clone();
                        probe.$idx = cand.clone();
                        still_fails(&probe)
                    });
                )+
                current
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// `Just` strategy: always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
    type Value = T;
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use super::{StdRng, Strategy};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            use rand::Rng;
            assert!(!self.len.is_empty(), "vec strategy with empty length range");
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }

        /// Three passes, each committing only to confirmed-failing candidates:
        /// 1. minimal failing *prefix* by binary search on length (exact when failure
        ///    is monotone in length, still sound otherwise);
        /// 2. drop remaining elements one at a time (left to right), keeping deletions
        ///    that still fail — removes passing noise ahead of the culprit;
        /// 3. shrink each surviving element in place with the element strategy.
        ///
        /// The length floor of the strategy's range is always respected.
        fn shrink(
            &self,
            failing: Self::Value,
            still_fails: &mut dyn FnMut(&Self::Value) -> bool,
        ) -> Self::Value {
            let mut cur = failing;
            let min_len = self.len.start;

            // Pass 1: minimal failing prefix.
            let mut lo = min_len;
            let mut hi = cur.len();
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                let cand: Vec<S::Value> = cur[..mid].to_vec();
                if still_fails(&cand) {
                    cur = cand;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }

            // Pass 2: single-element deletions.
            let mut i = 0;
            while i < cur.len() && cur.len() > min_len {
                let mut cand = cur.clone();
                cand.remove(i);
                if still_fails(&cand) {
                    cur = cand; // same index now holds the next element
                } else {
                    i += 1;
                }
            }

            // Pass 3: element-wise shrinking with the others pinned.
            for i in 0..cur.len() {
                let elem = cur[i].clone();
                let shrunk = self.element.shrink(elem, &mut |cand| {
                    let mut probe = cur.clone();
                    probe[i] = cand.clone();
                    still_fails(&probe)
                });
                cur[i] = shrunk;
            }
            cur
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude::*` for the supported surface.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
}

/// Mirror of `proptest::proptest!`: expands each `fn name(arg in strategy, ..) { body }`
/// into a `#[test]` running `cases` sampled executions, shrinking any failure before
/// reporting it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let strategies = ($($strategy,)+);
                // Runs the body once against a borrowed value tuple. Cloning lets the
                // shrinker replay the body arbitrarily many times.
                let run = $crate::bind(&strategies, |vals| -> $crate::TestCaseResult {
                    let ($($arg,)+) = ::std::clone::Clone::clone(vals);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
                let describe = $crate::bind(&strategies, |vals| -> ::std::string::String {
                    let ($(ref $arg,)+) = *vals;
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(stringify!($arg));
                        s.push_str(" = ");
                        s.push_str(&format!("{:?}", $arg));
                        s.push_str("; ");
                    )+
                    s
                });
                for case in 0..config.cases {
                    let vals = $crate::Strategy::sample(&strategies, &mut rng);
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| run(&vals)),
                    );
                    if let ::std::option::Option::Some(err) = $crate::outcome_failure(outcome) {
                        let sampled_desc = describe(&vals);
                        let mut probes = 0u32;
                        let minimal = $crate::with_quiet_panics(|| {
                            $crate::Strategy::shrink(&strategies, vals, &mut |cand| {
                                probes += 1;
                                $crate::outcome_failure(::std::panic::catch_unwind(
                                    ::std::panic::AssertUnwindSafe(|| run(cand)),
                                ))
                                .is_some()
                            })
                        });
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}\n  minimal failing case ({} shrink probes): {}",
                            stringify!($name), case + 1, config.cases, err,
                            sampled_desc, probes, describe(&minimal),
                        );
                    }
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.5f32..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_strategies_work(pair in (0usize..4, 0usize..4)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn wide_tuple_strategies_work(
            six in (0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2, 0u8..2),
        ) {
            prop_assert!(six.0 < 2 && six.5 < 2);
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                config = ProptestConfig::with_cases(4);
                fn always_fails(x in 0usize..3) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("should have panicked");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("inputs:"), "got: {msg}");
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        for _ in 0..16 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }

    // ------------------------------------------------------------- shrinking

    #[test]
    fn integer_shrink_binary_searches_to_threshold() {
        use crate::Strategy;
        // Upward-closed failure region {v >= 10}: binary search finds the boundary.
        let minimal = (0i32..100).shrink(87, &mut |v| *v >= 10);
        assert_eq!(minimal, 10);
        // Negative lower bounds shrink toward the bound, not toward zero.
        let minimal = (-50i32..50).shrink(37, &mut |v| *v >= -12);
        assert_eq!(minimal, -12);
        // Seed-sized (u64) ranges stay exact.
        let minimal = (0u64..1_000_000).shrink(999_999, &mut |v| *v >= 123_456);
        assert_eq!(minimal, 123_456);
        // Inclusive ranges shrink too.
        let minimal = (0usize..=255).shrink(200, &mut |v| *v >= 3);
        assert_eq!(minimal, 3);
        // Extreme signed bounds must not overflow the midpoint computation.
        let minimal = (i64::MIN..i64::MAX).shrink(i64::MAX - 1, &mut |v| *v >= 42);
        assert_eq!(minimal, 42);
    }

    #[test]
    fn shrink_probe_count_is_logarithmic() {
        use crate::Strategy;
        let mut probes = 0usize;
        let _ = (0u64..1_000_000).shrink(999_999, &mut |v| {
            probes += 1;
            *v >= 123_456
        });
        assert!(
            probes <= 40,
            "binary search should need ~20 probes, took {probes}"
        );
    }

    #[test]
    fn tuple_shrink_minimises_each_component() {
        use crate::Strategy;
        let strat = (0u32..50, 0u32..1000);
        let minimal = strat.shrink((33, 777), &mut |(_, y)| *y >= 100);
        // x is irrelevant to the failure, so it shrinks all the way to 0; y stops at
        // the failure boundary.
        assert_eq!(minimal, (0, 100));
    }

    #[test]
    fn failing_property_shrinks_to_minimal_case() {
        // End-to-end through the macro: a seeded failing property must report the
        // boundary value, not the raw sample.
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                config = ProptestConfig::with_cases(8);
                fn fails_from_17_up(x in 0usize..1000) {
                    prop_assert!(x < 17, "x was {}", x);
                }
            }
            fails_from_17_up();
        });
        let err = result.expect_err("should have panicked");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(
            msg.contains("minimal failing case") && msg.contains("x = 17;"),
            "expected shrink to 17, got: {msg}"
        );
    }

    #[test]
    fn float_shrink_bisects_to_threshold() {
        use crate::Strategy;
        // Upward-closed failure region {x >= 2.5}: the boundary is found to precision.
        let minimal = (0f32..10.0).shrink(7.3, &mut |v| *v >= 2.5);
        assert!(
            (minimal - 2.5).abs() < 1e-4 && minimal >= 2.5,
            "expected ~2.5, got {minimal}"
        );
        // The lower bound is tried first when it fails.
        let minimal = (1f64..100.0).shrink(55.0, &mut |v| *v >= 0.5);
        assert_eq!(minimal, 1.0);
        // Zero is tried when it sits inside the bracket.
        let minimal = (-10f32..10.0).shrink(4.0, &mut |v| *v >= -3.0);
        assert!((-3.0..=0.0).contains(&minimal), "got {minimal}");
        // Inclusive ranges shrink too.
        let minimal = (0f64..=1.0).shrink(0.9, &mut |v| *v >= 0.25);
        assert!((minimal - 0.25).abs() < 1e-9, "got {minimal}");
    }

    #[test]
    fn vec_shrink_finds_minimal_prefix_and_elements() {
        use crate::Strategy;
        let strat = crate::collection::vec(0u32..100, 0..20);
        // Failure depends only on length: minimal failing case is the shortest failing
        // vector with every element at the range minimum.
        let failing = vec![13u32, 99, 7, 42, 8, 77, 21];
        let minimal = strat.shrink(failing, &mut |v| v.len() >= 5);
        assert_eq!(minimal, vec![0, 0, 0, 0, 0]);
        // Failure depends on one offending element: deletions strip the noise around
        // it and the element itself bisects to the threshold.
        let failing = vec![3u32, 1, 4, 87, 2, 6];
        let minimal = strat.shrink(failing, &mut |v| v.iter().any(|&x| x >= 10));
        assert_eq!(minimal, vec![10]);
        // The length floor of the strategy is respected.
        let strat = crate::collection::vec(0u32..100, 3..20);
        let minimal = strat.shrink(vec![50, 60, 70, 80], &mut |_| true);
        assert_eq!(minimal, vec![0, 0, 0]);
    }

    #[test]
    fn vec_of_floats_shrinks_end_to_end() {
        // The combination the new topk oracle tests rely on: a failing float-vector
        // case must come back minimal through the whole macro pipeline.
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                config = ProptestConfig::with_cases(8);
                fn fails_when_any_big(v in prop::collection::vec(0f32..100.0, 1..16)) {
                    prop_assert!(v.iter().all(|&x| x < 20.0), "big element in {:?}", v);
                }
            }
            fails_when_any_big();
        });
        let err = result.expect_err("should have panicked");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        // Minimal case: exactly one element, bisected to ~20.0.
        assert!(
            msg.contains("minimal failing case") && msg.contains("v = [20.0"),
            "expected a single ~20.0 element, got: {msg}"
        );
    }

    #[test]
    fn panicking_bodies_shrink_too() {
        // Failures signalled by panic (plain assert!) shrink exactly like
        // prop_assert failures.
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                config = ProptestConfig::with_cases(4);
                fn panics_from_100_up(x in 0u32..10_000) {
                    assert!(x < 100);
                }
            }
            panics_from_100_up();
        });
        let err = result.expect_err("should have panicked");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(
            msg.contains("x = 100;"),
            "expected shrink to 100, got: {msg}"
        );
    }
}
