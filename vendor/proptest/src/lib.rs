//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build container has no crates.io access, so external dependencies are vendored as
//! minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). This one runs each
//! `proptest!` test as `cases` randomized executions with a seed derived from the test's
//! module path — deterministic run-to-run, so CI failures reproduce locally. On failure it
//! reports the case number and the sampled arguments. **No shrinking**: the reported
//! counterexample is the raw sample, not a minimal one.
//!
//! Supported surface: `proptest! { #![proptest_config(ProptestConfig::with_cases(N))]
//! #[test] fn name(arg in strategy, ...) { ... } }`, `prop_assert!`, `prop_assert_eq!`,
//! numeric-range strategies, tuples of strategies, and `prop::collection::vec`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized executions per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The failure type `prop_assert!` produces inside a test body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Result alias mirroring proptest's.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-test RNG: FNV-1a hash of the fully-qualified test name as the seed.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A value generator. Unlike real proptest there is no shrinking tree — `sample` just
/// draws one value.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// `Just` strategy: always the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).
    use super::{StdRng, Strategy};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S: Strategy> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, length_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            use rand::Rng;
            assert!(!self.len.is_empty(), "vec strategy with empty length range");
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude::*` for the supported surface.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult};
}

/// Mirror of `proptest::proptest!`: expands each `fn name(arg in strategy, ..) { body }`
/// into a `#[test]` running `cases` sampled executions.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                    let described = {
                        let mut s = String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome = (move || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\n  inputs: {}\n  (no shrinking — see vendor/proptest)",
                            stringify!($name), case + 1, config.cases, e, described,
                        );
                    }
                }
            }
        )*
    };
}

/// Mirror of `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Mirror of `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Mirror of `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.5f32..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn tuple_strategies_work(pair in (0usize..4, 0usize..4)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn failing_case_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            crate::__proptest_impl! {
                config = ProptestConfig::with_cases(4);
                fn always_fails(x in 0usize..3) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("should have panicked");
        let msg = err.downcast_ref::<String>().expect("panic payload");
        assert!(msg.contains("inputs:"), "got: {msg}");
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("some::test");
        let mut b = crate::test_rng("some::test");
        for _ in 0..16 {
            assert_eq!((0u64..1000).sample(&mut a), (0u64..1000).sample(&mut b));
        }
    }
}
