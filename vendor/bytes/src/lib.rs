//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The container this workspace builds in has no network access to crates.io, so the
//! handful of external dependencies are vendored as minimal API-compatible shims (see
//! `DESIGN.md` §"Vendored shims"). This one covers exactly the subset `usp-data::io`
//! uses: little-endian reads off a `&[u8]` cursor ([`Buf`]) and little-endian appends
//! into a growable buffer ([`BufMut`] / [`BytesMut`]).

/// Read side: a cursor over bytes. Implemented for `&[u8]`, which advances in place.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Advances the cursor by `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);
    /// Copies `dst.len()` bytes into `dst` and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "copy_to_slice past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Write side: append primitives to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer, a thin wrapper over `Vec<u8>`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Copies the written bytes into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut buf = BytesMut::new();
        buf.put_i32_le(-7);
        buf.put_f32_le(2.5);
        buf.put_u8(255);
        buf.put_u32_le(123456);
        let v = buf.to_vec();
        let mut cur: &[u8] = &v;
        assert_eq!(cur.remaining(), 13);
        assert_eq!(cur.get_i32_le(), -7);
        assert_eq!(cur.get_f32_le(), 2.5);
        assert_eq!(cur.get_u8(), 255);
        assert_eq!(cur.get_u32_le(), 123456);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4, 5];
        let mut cur: &[u8] = &data;
        cur.advance(2);
        assert_eq!(cur.get_u8(), 3);
        assert_eq!(cur.remaining(), 2);
    }
}
