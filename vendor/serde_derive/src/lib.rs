//! Offline stand-in for [`serde_derive`](https://docs.rs/serde_derive).
//!
//! Emits impls of the vendored `serde` shim's `Serialize`/`Deserialize` traits (which are
//! `Value` conversions, not the real serde visitor machinery). Written against raw
//! `proc_macro` tokens because `syn`/`quote` are not available offline.
//!
//! Supported shapes — exactly what this workspace derives:
//! * structs with named fields (honouring `#[serde(skip)]`: omitted on write,
//!   `Default`-filled on read; and `#[serde(default)]`: `Default`-filled when
//!   absent on read, so old serialized snapshots stay readable);
//! * enums with unit, newtype and struct variants (externally tagged, like real serde).
//!
//! Generics, tuple structs and multi-field tuple variants are rejected with a clear
//! compile-time panic so a future use loudly demands extending the shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{name}\".to_string(), ::serde::Serialize::to_value(&self.{name})));\n",
                    name = f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "Self::{v}(inner) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(inner))]),\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            pushes.push_str(&format!(
                                "inner.push((\"{name}\".to_string(), ::serde::Serialize::to_value({name})));\n",
                                name = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{v} {{ {binders} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(inner))])\n\
                             }},\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{name}: ::std::default::Default::default(),\n",
                        name = f.name
                    ));
                } else if f.default {
                    inits.push_str(&format!(
                        "{name}: ::serde::de_field_or_default(v, \"{name}\")?,\n",
                        name = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{name}: ::serde::de_field(v, \"{name}\")?,\n",
                        name = f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{\n{inits}}})\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
        Shape::Enum(variants) => {
            let mut str_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => str_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok(Self::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Newtype => obj_arms.push_str(&format!(
                        "\"{v}\" => return ::std::result::Result::Ok(Self::{v}(::serde::Deserialize::from_value(payload)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{name}: ::std::default::Default::default(),\n",
                                    name = f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{name}: ::serde::de_field(payload, \"{name}\")?,\n",
                                    name = f.name
                                ));
                            }
                        }
                        obj_arms.push_str(&format!(
                            "\"{v}\" => return ::std::result::Result::Ok(Self::{v} {{\n{inits}}}),\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => {{\n\
                                 match tag.as_str() {{\n{str_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                                 match tag.as_str() {{\n{obj_arms}\
                                     _ => {{}}\n\
                                 }}\n\
                             }}\n\
                             _ => {{}}\n\
                         }}\n\
                         ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown {name} variant: {{v:?}}\")))\n\
                     }}\n\
                 }}",
                name = item.name
            )
        }
    };
    code.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Tiny token-level parser for the supported item shapes.
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility, find `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // `#` + [...] group
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, `pub(crate)` idents, etc.
            }
            Some(_) => i += 1, // e.g. the parens of `pub(crate)`
            None => panic!("serde_derive shim: no struct/enum found in input"),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported — extend vendor/serde_derive");
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple struct `{name}` is not supported — extend vendor/serde_derive")
            }
            Some(_) => i += 1,
            None => {
                panic!("serde_derive shim: `{name}` has no body (unit structs are unsupported)")
            }
        }
    };

    let shape = if kind == "struct" {
        Shape::Struct(parse_fields(body))
    } else {
        Shape::Enum(parse_variants(body))
    };
    Item { name, shape }
}

/// Parses `(#[attr])* (pub)? name: Type,` sequences, tracking `#[serde(skip)]`.
fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Collect attributes for this field.
        let mut skip = false;
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if attr_has_serde_flag(&g.stream(), "skip") {
                            skip = true;
                        }
                        if attr_has_serde_flag(&g.stream(), "default") {
                            default = true;
                        }
                    }
                    i += 2;
                }
                _ => break,
            }
        }
        // Visibility.
        while let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            } else {
                break;
            }
        }
        // Field name.
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        i += 1;
        // `:` then the type — skip tokens until a top-level comma. Generic angle
        // brackets contain no top-level commas at this token depth except inside
        // `<...>`, so track angle-bracket depth.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

/// Parses `(#[attr])* Name ( (..) | {..} )? (= disc)? ,` sequences.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes (doc comments, #[default], ...).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '#' {
                i += 2;
            } else {
                break;
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let n_fields = count_top_level_types(g.stream());
                if n_fields != 1 {
                    panic!(
                        "serde_derive shim: tuple variant `{name}` with {n_fields} fields is unsupported — extend vendor/serde_derive"
                    );
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Counts comma-separated entries at angle-bracket depth 0.
fn count_top_level_types(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if saw_token_since_comma {
                        count += 1;
                    }
                    saw_token_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// True for `[serde(... flag ...)]` attribute bodies carrying the bare `flag` ident.
fn attr_has_serde_flag(stream: &TokenStream, flag: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream().into_iter().any(|t| match t {
                TokenTree::Ident(arg) => arg.to_string() == flag,
                _ => false,
            })
        }
        _ => false,
    }
}
