//! Offline stand-in for [`serde_json`](https://docs.rs/serde_json).
//!
//! Works against the vendored `serde` shim's [`serde::Value`] intermediate
//! representation: `to_string`/`to_string_pretty` render a `Value` tree as JSON text, and
//! `from_str` parses JSON text back into a `Value` tree before handing it to
//! `serde::Deserialize::from_value`. Non-finite floats are emitted as `null` (JSON has no
//! spelling for them); `deserialize` maps `null` back to `NaN` for float targets.

use serde::{Deserialize, Serialize, Value};

/// JSON error: a message plus 1-based line/column when produced by the parser.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
    col: usize,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            line: 0,
            col: 0,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.msg, self.line, self.col)
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{f:?}` keeps a decimal point or exponent so the value re-parses as a
                // float ("1.0", not "1"); integers deserialize from either form anyway.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error {
            msg: msg.to_string(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this workspace's reports.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig 5 \"sweep\"\n".into())),
            ("n".into(), Value::Int(-3)),
            ("recall".into(), Value::Float(0.925)),
            ("big".into(), Value::UInt(u64::MAX)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty_obj".into(), Value::Object(vec![])),
            ("empty_arr".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn floats_keep_a_decimal_marker() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&Value::Float(f64::NAN)).unwrap(), "null");
        assert_eq!(to_string(&Value::Float(f64::INFINITY)).unwrap(), "null");
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = from_str::<Value>("{\"a\": }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "got: {msg}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
    }
}
