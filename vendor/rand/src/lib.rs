//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate (0.9 API surface).
//!
//! The build container has no crates.io access, so external dependencies are vendored as
//! minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). This one provides
//! the subset the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `random::<T>()` / `random_range(..)` / `random_bool(..)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic per seed and
//! statistically solid for experiment workloads. The *stream differs* from the real
//! `rand::rngs::StdRng` (ChaCha12); the workspace only relies on per-seed determinism,
//! never on a particular stream.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" domain by [`Rng::random`]:
/// `[0, 1)` for floats, the full range for integers, fair coin for `bool`.
pub trait StandardUniform: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer/float types with uniform sampling over arbitrary sub-ranges.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
                debug_assert!(low <= high_incl);
                let span = (high_incl as i128 - low as i128) as u128 + 1;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo bias of a
                // single 64-bit draw is irrelevant at experiment scale.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
        low + (high_incl - low) * f32::sample_standard(rng)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_incl: Self) -> Self {
        low + (high_incl - low) * f64::sample_standard(rng)
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + Bounded> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        let v = T::sample_range(rng, self.start, T::prev(self.end));
        // Float rounding in `low + (high - low) * x` can overshoot on extreme ranges;
        // enforce the half-open contract unconditionally (no-op for integers).
        if v >= self.end {
            T::prev(self.end)
        } else {
            v
        }
    }
}

impl<T: SampleUniform + PartialOrd + Copy + Bounded> SampleRange<T>
    for std::ops::RangeInclusive<T>
{
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "random_range: empty range");
        T::sample_range(rng, lo, hi)
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one per type.
pub trait Bounded: Sized {
    fn prev(self) -> Self;
}

macro_rules! impl_bounded_int {
    ($($t:ty),*) => {$(
        impl Bounded for $t {
            fn prev(self) -> Self { self - 1 }
        }
    )*};
}
impl_bounded_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Bounded for f32 {
    // Sampling `low + (high - low) * x` with x in [0, 1) can round *up* to `high` when
    // the true value lands halfway between the two nearest floats, so passing `high`
    // through unchanged would violate the half-open contract of `Range`. Sampling over
    // the inclusive upper bound `next_down(high)` instead makes every rounded result
    // `<= next_down(high) < high` (the true value never exceeds a representable bound).
    fn prev(self) -> Self {
        self.next_down()
    }
}

impl Bounded for f64 {
    fn prev(self) -> Self {
        self.next_down()
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng` (0.9 names).
pub trait Rng: RngCore {
    /// A sample from the standard domain of `T` (see [`StandardUniform`]).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generator types.
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman & Vigna) seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into the 256-bit state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim has a single generator implementation.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64_pub(), b.next_u64_pub());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: Vec<u64> = (0..4).map(|_| c.next_u64_pub()).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<u64> = (0..4).map(|_| d.next_u64_pub()).collect();
        assert_ne!(first, other);
    }

    impl StdRng {
        fn next_u64_pub(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f32 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn range_sampling_hits_bounds_only() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.random_range(0..=2usize);
            assert!(v <= 2);
        }
        for _ in 0..500 {
            let v: f32 = rng.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&v));
        }
    }

    #[test]
    fn float_half_open_range_never_yields_upper_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        // 1.0..2.0 is the worst case for tie-rounding: the sampler's 24-bit draw has one
        // more bit of resolution than f32 spacing in [1, 2), so x = 1 - 2^-24 maps to
        // exactly halfway between the top two representable values and ties-to-even
        // would round to 2.0 without the next_down/clamp handling.
        for _ in 0..200_000 {
            let v: f32 = rng.random_range(1.0f32..2.0);
            assert!((1.0..2.0).contains(&v), "got {v}");
        }
        // A range so tight it only contains a handful of representable floats.
        let hi = 1.0f32 + 3.0 * f32::EPSILON;
        for _ in 0..1000 {
            let v: f32 = rng.random_range(1.0f32..hi);
            assert!(v >= 1.0 && v < hi, "got {v}");
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
