//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build container has no crates.io access, so external dependencies are vendored as
//! minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). Real serde is
//! generic over `Serializer`/`Deserializer`; the only consumer in this workspace is the
//! vendored `serde_json`, so this shim collapses the design to one intermediate
//! representation: [`Value`]. `#[derive(Serialize, Deserialize)]` (re-exported from the
//! vendored `serde_derive`) emits `Value` conversions, and `serde_json` renders/parses
//! `Value` as JSON text. The `#[serde(skip)]` attribute is honoured: skipped fields are
//! omitted on write and `Default`-filled on read.

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate representation every serializable type converts through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (and unsigned ones that fit).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Key order is preserved (insertion order of the deriving struct's fields).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization error (unused by the shim itself, kept for API shape).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into [`Value`]. The derive macro implements this field-by-field.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from [`Value`]. The derive macro implements this field-by-field.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived impls when an object is missing a field. `Option<T>` overrides
    /// this to produce `None`; everything else errors.
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{name}`")))
    }
}

/// Derive-macro helper: deserializes object field `name` out of `v`.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::from_value(inner),
        None => T::missing_field(name),
    }
}

/// Derive-macro helper for `#[serde(default)]` fields: a missing field becomes
/// `T::default()` instead of an error (used to keep old serialized snapshots
/// readable after a struct gains fields).
pub fn de_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(inner) => T::from_value(inner),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::Int(v as i64) } else { Value::UInt(v) }
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

fn value_as_i128(v: &Value) -> Option<i128> {
    match v {
        Value::Int(i) => Some(*i as i128),
        Value::UInt(u) => Some(*u as i128),
        // Accept integral floats: JSON writers are free to emit `3.0` for 3.
        Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i128),
        _ => None,
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = value_as_i128(v)
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            // The JSON writer emits NaN/infinities as null (JSON has no spelling for them).
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, got {other:?}"
            ))),
        }
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!(
                "expected 3-element array, got {other:?}"
            ))),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip_through_value() {
        assert_eq!(usize::from_value(&42usize.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![]];
        assert_eq!(Vec::<Vec<f32>>::from_value(&v.to_value()).unwrap(), v);
        let pair = ("a".to_string(), 3usize);
        assert_eq!(
            <(String, usize)>::from_value(&pair.to_value()).unwrap(),
            pair
        );
    }

    #[test]
    fn option_missing_field_is_none() {
        let obj = Value::Object(vec![]);
        let got: Option<u32> = de_field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        let missing: Result<u32, _> = de_field(&obj, "absent");
        assert!(missing.is_err());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(usize::from_value(&Value::Float(3.0)).unwrap(), 3);
        assert!(usize::from_value(&Value::Float(3.5)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }
}
