//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate.
//!
//! The build container has no crates.io access, so the external dependencies are vendored
//! as minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). This shim keeps
//! the `par_*` call sites source-compatible but executes them **sequentially**: each
//! `par_*` entry point returns the corresponding standard-library iterator, so every
//! downstream combinator (`map`, `enumerate`, `for_each`, `collect`, ...) is ordinary
//! `std::iter` machinery. `flat_map_iter` — a rayon-only combinator name — is provided as
//! an extension trait aliasing `flat_map`.
//!
//! Restoring real data parallelism (work-stealing or a scoped-thread chunk executor) is
//! tracked in `ROADMAP.md`; swapping the real crate back in requires no source changes.

use std::ops::Range;

/// Sequential stand-in for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The shim executes on the calling thread only.
pub fn current_num_threads() -> usize {
    1
}

pub mod iter {
    //! Sequential `IntoParallelIterator` and friends.

    use super::Range;

    /// Types convertible into a "parallel" (here: sequential) iterator.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl IntoParallelIterator for Range<usize> {
        type Item = usize;
        type Iter = Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl IntoParallelIterator for Range<u32> {
        type Item = u32;
        type Iter = Range<u32>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }

    /// Rayon-only combinator names, aliased onto any iterator.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// Rayon's `flat_map_iter` is `flat_map` with a serial inner iterator — which is
        /// exactly what `flat_map` is here.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }

        /// Chunk-size hint; meaningless sequentially, kept for source compatibility.
        fn with_min_len(self, _min: usize) -> Self {
            self
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::iter::{
        IntoParallelIterator, ParallelIteratorExt, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_into_par_iter_collects() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut data = vec![0f32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as f32;
            }
        });
        assert_eq!(data, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| vec![i, i])
            .collect();
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }
}
