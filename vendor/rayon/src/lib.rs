//! Offline stand-in for the [`rayon`](https://docs.rs/rayon) crate — real data
//! parallelism on a **persistent worker pool**.
//!
//! The build container has no crates.io access, so the external dependencies are vendored
//! as minimal API-compatible shims (see `DESIGN.md` §"Vendored shims"). Earlier revisions
//! of this shim spawned scoped threads per parallel region; this revision keeps a
//! process-wide pool of long-lived worker threads fed by a job queue, so serving-style
//! workloads (many small parallel regions per second) no longer pay a thread-spawn per
//! region:
//!
//! * The input index space is pre-split into contiguous **blocks** whose boundaries
//!   depend only on the input length and the `with_min_len` hint — **never on the thread
//!   count**. Threads pull blocks from an atomic counter, each block's result is
//!   written into its own ordered slot, and terminal operations merge the slots in block
//!   order. Consequence: `collect`, `sum` and friends return *bit-identical* results
//!   whether the pool has 1 thread or 64 (the reduction tree has a fixed shape).
//! * A parallel region is submitted to the pool as a **job**: up to `pool size - 1`
//!   idle workers join the submitting thread in draining the region's blocks, and the
//!   submitter blocks until every claimed block has finished. Workers are spawned
//!   lazily, persist across regions, and install the region's pool-size override while
//!   working it, so `current_num_threads()` is consistent inside every block.
//! * The pool size comes from `std::thread::available_parallelism`, overridable via the
//!   `USP_NUM_THREADS` environment variable and, per call site, via
//!   [`with_num_threads`]. Nested parallel regions execute inline on the worker that
//!   encountered them, so parallelism never fans out exponentially.
//! * A panic inside any block is caught, the remaining blocks are cancelled, and the
//!   first payload is re-raised on the calling thread — matching real rayon's
//!   propagation semantics, including when the panicking block ran on a pool worker.
//!
//! The supported surface (`prelude::*`, `join`, `par_iter`/`par_chunks_mut`/
//! `into_par_iter` and the `map`/`enumerate`/`flat_map_iter`/`for_each`/`collect`/`sum`
//! combinators) mirrors rayon's, with `Fn + Send + Sync (+ Clone)` closure bounds that
//! real rayon also satisfies — so library code swaps to the real crate unchanged. The
//! exceptions are [`with_num_threads`] and [`shutdown_pool`], shim-only hooks used by
//! the equivalence tests and the benchmark harness; those callers would need porting to
//! `ThreadPoolBuilder` if the real crate were swapped back in.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

pub mod pool {
    //! The persistent worker pool, its job queue, and pool-size resolution.

    use super::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::cell::Cell;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// Upper bound on the number of blocks a parallel region is split into. More blocks
    /// than threads gives dynamic load balancing; a fixed cap keeps per-block bookkeeping
    /// negligible. Must stay a compile-time constant: block boundaries feed the ordered
    /// merge, so they must not depend on the runtime thread count.
    const TARGET_BLOCKS: usize = 64;

    static GLOBAL_POOL_SIZE: OnceLock<usize> = OnceLock::new();

    thread_local! {
        /// Per-thread pool-size override installed by [`crate::with_num_threads`]
        /// (0 = no override).
        static NUM_THREADS_OVERRIDE: Cell<usize> = const { Cell::new(0) };
        /// Set while this thread is executing blocks on behalf of a parallel region;
        /// nested regions then run inline instead of spawning threads-within-threads.
        static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
    }

    /// Resolves the pool size from the `USP_NUM_THREADS` override and the detected
    /// hardware parallelism. Pure so it can be unit-tested without touching the
    /// process environment.
    pub fn resolve_pool_size(env_override: Option<&str>, available: usize) -> usize {
        match env_override.and_then(|s| s.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => available.max(1),
        }
    }

    /// The lazily-initialised global pool size.
    pub(crate) fn global_pool_size() -> usize {
        *GLOBAL_POOL_SIZE.get_or_init(|| {
            resolve_pool_size(
                std::env::var("USP_NUM_THREADS").ok().as_deref(),
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1),
            )
        })
    }

    pub(crate) fn effective_pool_size() -> usize {
        let o = NUM_THREADS_OVERRIDE.with(Cell::get);
        if o > 0 {
            o
        } else {
            global_pool_size()
        }
    }

    pub(crate) fn in_parallel_region() -> bool {
        IN_PARALLEL_REGION.with(Cell::get)
    }

    pub(crate) fn with_override<R>(n: usize, f: impl FnOnce() -> R) -> R {
        NUM_THREADS_OVERRIDE.with(|c| {
            let prev = c.replace(n);
            let out = f();
            c.set(prev);
            out
        })
    }

    pub(crate) fn enter_region<R>(f: impl FnOnce() -> R) -> R {
        IN_PARALLEL_REGION.with(|c| {
            let prev = c.replace(true);
            let out = f();
            c.set(prev);
            out
        })
    }

    /// Block length for an input of `len` units: depends only on `len` and `min_len`,
    /// never on the thread count (see the module docs for why).
    pub(crate) fn block_len(len: usize, min_len: usize) -> usize {
        len.div_ceil(TARGET_BLOCKS).max(min_len).max(1)
    }

    // ------------------------------------------------------------- the worker pool

    /// One parallel region in flight, shared between the submitting thread and the pool
    /// workers that join it.
    ///
    /// `run_block` points into the submitting thread's stack frame. It is a raw pointer
    /// — not a lifetime-erased reference — because stale queue tickets can keep the
    /// `Region` alive after that frame is gone, and holding a dangling *reference*
    /// would be undefined behaviour even unused. The completion protocol makes each
    /// dereference sound: the submitter only returns from [`ActiveRegion::finish`]
    /// once `next >= nblocks` (or `stop` is set) **and** `active == 0`, and every
    /// thread increments `active` *before* attempting a claim and only dereferences
    /// `run_block` after a successful claim (all accesses `SeqCst`). Once the
    /// submitter has observed exhaustion, no later claim can succeed, so no thread can
    /// reach the closure after `finish` returns; stale tickets popped later find the
    /// region exhausted and never touch `run_block`.
    struct Region {
        /// Runs block `i`. Borrow of the submitter's stack as a raw pointer (see above).
        run_block: *const (dyn Fn(usize) + Sync),
        nblocks: usize,
        /// Next block index to claim (claims past `nblocks` fail).
        next: AtomicUsize,
        /// Set on the first panic; cancels every unclaimed block.
        stop: AtomicBool,
        /// Threads currently inside [`Region::work`].
        active: AtomicUsize,
        /// Pool-size override workers install while working this region, so
        /// `current_num_threads()` inside a block matches the submitter's view.
        effective: usize,
        panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
        /// Pair guarding the completion wait in [`Region::wait_done`].
        done: Mutex<()>,
        done_cv: Condvar,
    }

    // SAFETY: the raw `run_block` pointer is the only non-auto-traited field; it points
    // at a `dyn Fn(usize) + Sync` closure, which is safe to share and call from any
    // thread, and the completion protocol (struct docs) bounds every dereference to the
    // closure's actual lifetime.
    unsafe impl Send for Region {}
    unsafe impl Sync for Region {}

    impl Region {
        /// Claims and executes blocks until the region is exhausted or cancelled.
        /// Called by the submitter and by every pool worker that picked up a ticket.
        fn work(&self) {
            // ordering: SeqCst throughout the region protocol — correctness of
            // `wait_done` needs a single total order over `next`, `stop` and
            // `active` so "active incremented before any claim" and "claim
            // observed before decrement" hold across all participants.
            self.active.fetch_add(1, Ordering::SeqCst);
            loop {
                // ordering: SeqCst — see the protocol note at the top of work().
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                // ordering: SeqCst claim; totally ordered with the `active`
                // updates above/below so a claim never races past wait_done().
                let i = self.next.fetch_add(1, Ordering::SeqCst);
                if i >= self.nblocks {
                    break;
                }
                // SAFETY: a successful claim implies the submitter has not yet observed
                // exhaustion, so it is still blocked in `finish()` and the closure this
                // points to is alive (see the struct docs).
                let run_block = unsafe { &*self.run_block };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| run_block(i))) {
                    let mut slot = self.panic.lock().expect("region panic-slot lock poisoned");
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    drop(slot);
                    // ordering: SeqCst cancellation — must be ordered before this
                    // worker's `active` decrement so exhausted() and the stored
                    // panic payload are both visible to the waiter.
                    self.stop.store(true, Ordering::SeqCst);
                    break;
                }
            }
            // ordering: SeqCst — totally ordered after every claim this worker
            // made, so `active == 0` in wait_done() proves no block is running.
            self.active.fetch_sub(1, Ordering::SeqCst);
            let _guard = self.done.lock().expect("region done lock poisoned");
            self.done_cv.notify_all();
        }

        fn exhausted(&self) -> bool {
            // ordering: SeqCst — part of the region protocol's total order
            // (see work()); a weaker load could see exhaustion before a claim.
            self.stop.load(Ordering::SeqCst) || self.next.load(Ordering::SeqCst) >= self.nblocks
        }

        /// Blocks until no thread can still be executing (or later claim) a block.
        fn wait_done(&self) {
            let mut guard = self.done.lock().expect("region done lock poisoned");
            // ordering: SeqCst — with the total order established in work(),
            // exhausted-and-zero-active proves no thread can claim or still be
            // running a block, which is exactly what the caller relies on.
            while !(self.exhausted() && self.active.load(Ordering::SeqCst) == 0) {
                guard = self.done_cv.wait(guard).unwrap();
            }
        }
    }

    struct PoolState {
        /// Job queue: one ticket per worker invited to a region. Workers pop a ticket,
        /// drain the region, then return for the next ticket; tickets for regions that
        /// finished in the meantime are discarded on inspection.
        tickets: VecDeque<Arc<Region>>,
        /// Worker threads ever spawned and not yet shut down (grows monotonically to
        /// the largest pool size any region has requested).
        workers: usize,
        handles: Vec<std::thread::JoinHandle<()>>,
        shutting_down: bool,
    }

    struct Pool {
        state: Mutex<PoolState>,
        cv: Condvar,
    }

    static POOL: OnceLock<Pool> = OnceLock::new();

    fn pool() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState {
                tickets: VecDeque::new(),
                workers: 0,
                handles: Vec::new(),
                shutting_down: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Body of every persistent worker thread: pop a ticket, drain its region (with the
    /// region's pool-size override installed), repeat. Exits only when a shutdown is
    /// requested **and** the queue is empty, so in-flight regions keep their helpers.
    fn worker_loop() {
        let pool = pool();
        loop {
            let region = {
                let mut st = pool.state.lock().expect("pool state lock poisoned");
                loop {
                    if let Some(r) = st.tickets.pop_front() {
                        break r;
                    }
                    if st.shutting_down {
                        return;
                    }
                    st = pool.cv.wait(st).unwrap();
                }
            };
            with_override(region.effective, || enter_region(|| region.work()));
        }
    }

    /// Handle to a region submitted to the pool; [`finish`](ActiveRegion::finish) must
    /// run before the borrows inside the region's closure expire.
    pub(crate) struct ActiveRegion {
        region: Arc<Region>,
    }

    impl ActiveRegion {
        /// Participates in the region's work, waits for every helper to leave it, and
        /// returns the first panic payload if any block panicked.
        pub(crate) fn finish(self) -> Option<Box<dyn std::any::Any + Send>> {
            enter_region(|| self.region.work());
            self.region.wait_done();
            self.region
                .panic
                .lock()
                .expect("region panic-slot lock poisoned")
                .take()
        }
    }

    /// Submits a region to the persistent pool, inviting up to `helpers` workers
    /// (spawning new ones if fewer exist), and returns without blocking.
    ///
    /// # Safety
    ///
    /// `run_block` may borrow from the caller's stack. The caller must invoke
    /// [`ActiveRegion::finish`] on the returned handle before those borrows expire —
    /// `finish` blocks until no pool thread can touch `run_block` again.
    pub(crate) unsafe fn submit(
        run_block: &(dyn Fn(usize) + Sync),
        nblocks: usize,
        helpers: usize,
        effective: usize,
    ) -> ActiveRegion {
        // SAFETY: this only erases the borrow's lifetime at the raw-pointer level (a
        // trait-object pointer in the struct field defaults to `+ 'static`); every
        // dereference is bounded to the borrow's real lifetime by the completion
        // protocol — see the soundness argument on `Region` and `# Safety` above.
        let run_block: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(run_block)
        };
        let region = Arc::new(Region {
            run_block,
            nblocks,
            next: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            effective,
            panic: Mutex::new(None),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let pool = pool();
        let mut st = pool.state.lock().expect("pool state lock poisoned");
        // A concurrent shutdown_pool() is draining the workers; wait for it to complete
        // so this region gets freshly-spawned helpers instead of none.
        while st.shutting_down {
            st = pool.cv.wait(st).unwrap();
        }
        ensure_workers(&mut st, helpers);
        for _ in 0..helpers {
            st.tickets.push_back(Arc::clone(&region));
        }
        drop(st);
        pool.cv.notify_all();
        ActiveRegion { region }
    }

    /// Spawns workers until at least `n` exist (caller holds the state lock).
    fn ensure_workers(st: &mut PoolState, n: usize) {
        while st.workers < n {
            let name = format!("usp-pool-{}", st.workers);
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(worker_loop)
                .expect("rayon shim: failed to spawn pool worker");
            st.handles.push(handle);
            st.workers += 1;
        }
    }

    /// Ensures at least `n` persistent workers exist without submitting a region (see
    /// [`crate::prespawn_workers`]).
    pub(crate) fn prespawn(n: usize) {
        let pool = pool();
        let mut st = pool.state.lock().expect("pool state lock poisoned");
        while st.shutting_down {
            st = pool.cv.wait(st).unwrap();
        }
        ensure_workers(&mut st, n);
    }

    /// Number of persistent worker threads currently alive (see
    /// [`crate::pool_worker_count`]).
    pub(crate) fn worker_count() -> usize {
        pool()
            .state
            .lock()
            .expect("pool state lock poisoned")
            .workers
    }

    /// Joins every persistent worker and resets the pool (shim-only; see
    /// [`crate::shutdown_pool`]). Workers finish queued regions before exiting, and
    /// regions submitted afterwards respawn workers lazily.
    pub(crate) fn shutdown() {
        let pool = pool();
        let handles = {
            let mut st = pool.state.lock().expect("pool state lock poisoned");
            st.shutting_down = true;
            std::mem::take(&mut st.handles)
        };
        pool.cv.notify_all();
        for h in handles {
            let _ = h.join();
        }
        let mut st = pool.state.lock().expect("pool state lock poisoned");
        st.workers = 0;
        st.shutting_down = false;
        drop(st);
        pool.cv.notify_all();
    }

    /// Executes `fold` over every piece — on the persistent pool when more than one
    /// thread is warranted — and returns the per-piece results **in input order**.
    ///
    /// Panics in `fold` are caught, remaining pieces are cancelled, and the first
    /// payload is re-raised on the calling thread once all helpers have stopped.
    pub(crate) fn run_blocks<P, R, F>(pieces: Vec<P>, fold: F) -> Vec<R>
    where
        P: Send,
        R: Send,
        F: Fn(P) -> R + Sync,
    {
        let nblocks = pieces.len();
        if nblocks == 0 {
            return Vec::new();
        }
        let workers = if in_parallel_region() {
            1
        } else {
            effective_pool_size().min(nblocks)
        };
        if workers <= 1 {
            // Identical block structure, executed inline: results match the parallel
            // path bit-for-bit.
            return pieces.into_iter().map(fold).collect();
        }

        let slots: Vec<Mutex<Option<P>>> =
            pieces.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..nblocks).map(|_| Mutex::new(None)).collect();
        let run_block = |i: usize| {
            let piece = slots[i]
                .lock()
                .expect("input slot lock poisoned")
                .take()
                .expect("rayon shim: block dispatched twice");
            let r = fold(piece);
            *results[i].lock().expect("result slot lock poisoned") = Some(r);
        };

        // Helpers install this override so user code reading `current_num_threads()`
        // inside a block sees the same value no matter which thread executes the block.
        let effective = effective_pool_size();
        let payload = {
            // SAFETY: `finish()` is called before `run_block` (and the slots/results it
            // borrows) leaves scope, and blocks until no pool thread can touch it again.
            let active = unsafe { submit(&run_block, nblocks, workers - 1, effective) };
            active.finish()
        };
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("rayon shim: block finished without a result")
            })
            .collect()
    }
}

/// Number of threads the executor will use for parallel regions started on this thread.
pub fn current_num_threads() -> usize {
    pool::effective_pool_size()
}

/// Runs `f` with the pool size forced to `n` on this thread (restored afterwards).
///
/// Not part of real rayon's API — the equivalence test-suite and the benchmark harness
/// use it to compare thread counts within one process. `n = 0` removes any override.
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    pool::with_override(n, f)
}

/// Ensures at least `n` persistent workers exist, spawning any that are missing —
/// without running a parallel region.
///
/// Shim-only warm-up hook: a dummy region cannot reliably provision a large pool
/// (regions are split into at most a fixed number of blocks, and helpers are capped at
/// the block count), so warm-up paths spawn the workers directly. Idempotent; excess
/// existing workers are left alone.
pub fn prespawn_workers(n: usize) {
    pool::prespawn(n)
}

/// Number of persistent worker threads currently alive in the process-wide pool.
///
/// Shim-only diagnostic (real rayon has no equivalent): workers are spawned lazily and
/// persist, so this grows monotonically to the largest pool size any region requested
/// (until [`shutdown_pool`] resets it to 0). Serving code uses it to prove a warm-up
/// region really pre-spawned the workers — i.e. that the first batch after warm-up
/// creates no new threads. Note the count is process-global: concurrent tests sharing
/// the pool can both grow it, so exact-count assertions belong in single-test binaries.
pub fn pool_worker_count() -> usize {
    pool::worker_count()
}

/// Joins every persistent worker thread and resets the pool to empty; the next parallel
/// region respawns workers lazily. Shim-only (real rayon's global pool cannot be shut
/// down) — used by tests and by hosts that want a quiescent process at shutdown.
/// Workers drain already-queued regions before exiting, so this is safe to call
/// concurrently with parallel regions on other threads, which at worst run with fewer
/// helpers.
pub fn shutdown_pool() {
    pool::shutdown()
}

/// Runs both closures, potentially concurrently, and returns both results.
///
/// Matches real rayon's semantics: both closures always run to completion (or panic),
/// and if either panics the payload is re-raised on the caller after both have finished.
/// `oper_b` is offered to the persistent pool; the caller runs `oper_a`, then runs
/// `oper_b` itself if no worker picked it up.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let effective = pool::effective_pool_size();
    if pool::in_parallel_region() || effective <= 1 {
        return (oper_a(), oper_b());
    }
    let b_slot = std::sync::Mutex::new(Some(oper_b));
    let rb_slot: std::sync::Mutex<Option<RB>> = std::sync::Mutex::new(None);
    let run_block = |_i: usize| {
        let f = b_slot
            .lock()
            .expect("input slot lock poisoned")
            .take()
            .expect("rayon shim: join block dispatched twice");
        let r = f();
        *rb_slot.lock().expect("result slot lock poisoned") = Some(r);
    };
    let payload_b = {
        // SAFETY: `finish()` runs before `run_block`'s borrows (b_slot/rb_slot) expire
        // and blocks until no pool thread can touch them again.
        let active = unsafe { pool::submit(&run_block, 1, 1, effective) };
        let ra = catch_unwind(AssertUnwindSafe(oper_a));
        let payload_b = active.finish();
        match ra {
            Ok(ra) => match payload_b {
                None => {
                    let rb = rb_slot
                        .into_inner()
                        .unwrap()
                        .expect("rayon shim: join block finished without a result");
                    return (ra, rb);
                }
                Some(payload) => payload,
            },
            Err(payload) => payload,
        }
    };
    resume_unwind(payload_b)
}

pub mod iter {
    //! Parallel iterators over indexed sources, backed by the chunk executor.
    //!
    //! Every iterator here is an *indexed, splittable* description of work: it knows how
    //! many indivisible units it holds, can be split at a unit boundary, and can turn a
    //! piece into an ordinary sequential iterator. Terminal operations pre-split the
    //! chain into blocks (boundaries fixed by the executor's chunking heuristic) and
    //! hand them to the executor.

    use super::pool;

    /// Core parallel-iterator interface (the shim's analogue of rayon's trait pair).
    pub trait ParallelIterator: Sized + Send {
        /// Items the iterator yields.
        type Item: Send;
        /// The sequential iterator a piece lowers to.
        type Seq: Iterator<Item = Self::Item>;

        /// Number of indivisible work units: items for item-level iterators, chunks for
        /// `par_chunks[_mut]`, *input* items for `flat_map_iter`.
        fn units(&self) -> usize;
        /// Splits into `[0, at)` and `[at, units())`. `at` must be `<= units()`.
        fn split_at(self, at: usize) -> (Self, Self);
        /// Lowers this piece to a sequential iterator over its items, in order.
        fn into_seq(self) -> Self::Seq;
        /// Minimum number of units a block should hold (see `with_min_len`).
        fn min_len_hint(&self) -> usize {
            1
        }

        /// Maps each item through `f` (applied in parallel).
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Send + Sync + Clone,
        {
            Map { base: self, f }
        }

        /// Maps each item to a serial iterator and flattens. The result is no longer
        /// indexed (output lengths are unknown), so `enumerate` is unavailable on it —
        /// exactly as in real rayon.
        fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
        where
            U: IntoIterator,
            U::Item: Send,
            F: Fn(Self::Item) -> U + Send + Sync + Clone,
        {
            FlatMapIter { base: self, f }
        }

        /// Requests at least `min` units per block (a chunking-granularity hint).
        fn with_min_len(self, min: usize) -> MinLen<Self> {
            MinLen {
                base: self,
                min: min.max(1),
            }
        }

        /// Consumes every item (in parallel).
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Send + Sync,
        {
            drive(self, |seq| seq.for_each(&f));
        }

        /// Collects into `C`, preserving input order.
        fn collect<C>(self) -> C
        where
            C: FromParallelIterator<Self::Item>,
        {
            C::from_par_iter(self)
        }

        /// Sums the items. Per-block partial sums are merged in block order, so the
        /// result is identical for every thread count (though not necessarily equal to a
        /// strict left-to-right fold for floating-point items).
        fn sum<S>(self) -> S
        where
            S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
        {
            drive(self, |seq| seq.sum::<S>()).into_iter().sum()
        }

        /// Counts the items.
        fn count(self) -> usize {
            drive(self, |seq| seq.count()).into_iter().sum()
        }

        /// Reduces with `op` starting from `identity`, merging block results in order.
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Send + Sync,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Send + Sync,
        {
            drive(self, |seq| seq.fold(identity(), &op))
                .into_iter()
                .fold(identity(), &op)
        }
    }

    /// Marker for iterators whose unit order equals item order (prerequisite for
    /// `enumerate`). `flat_map_iter` outputs deliberately do not implement it.
    pub trait IndexedParallelIterator: ParallelIterator {
        /// Pairs each item with its global index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate {
                base: self,
                offset: 0,
            }
        }
    }

    /// Conversion into a parallel iterator (ranges, `Vec`, slices).
    pub trait IntoParallelIterator {
        type Item: Send;
        type Iter: ParallelIterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Ordered collection of per-block results (the shim's `FromParallelIterator`).
    pub trait FromParallelIterator<T: Send>: Sized {
        fn from_par_iter<P>(iter: P) -> Self
        where
            P: ParallelIterator<Item = T>;
    }

    impl<T: Send> FromParallelIterator<T> for Vec<T> {
        fn from_par_iter<P>(iter: P) -> Self
        where
            P: ParallelIterator<Item = T>,
        {
            let blocks = drive(iter, |seq| seq.collect::<Vec<T>>());
            let mut out = Vec::with_capacity(blocks.iter().map(Vec::len).sum());
            for mut b in blocks {
                out.append(&mut b);
            }
            out
        }
    }

    /// Pre-splits `iter` into fixed blocks and folds each on the executor, returning
    /// per-block results in order.
    fn drive<P, R>(iter: P, fold: impl Fn(P::Seq) -> R + Sync) -> Vec<R>
    where
        P: ParallelIterator,
        R: Send,
    {
        let n = iter.units();
        if n == 0 {
            return Vec::new();
        }
        let block = pool::block_len(n, iter.min_len_hint());
        // Peel blocks off the BACK: for owned sources (`VecPar`) `split_at` is a
        // `Vec::split_off`, which copies only the piece being detached when splitting
        // near the end — front-peeling would re-copy the whole remaining tail per
        // block, O(n · blocks) in total. NOTE: this puts the ragged remainder block
        // FIRST (front-peeling would put it last), so the peeling direction is part of
        // the deterministic block layout — changing it would silently change every
        // floating-point merge result against recorded baselines.
        let mut pieces = Vec::with_capacity(n.div_ceil(block));
        let mut rest = iter;
        let mut remaining = n;
        while remaining > block {
            let (left, right) = rest.split_at(remaining - block);
            pieces.push(right);
            rest = left;
            remaining -= block;
        }
        pieces.push(rest);
        pieces.reverse();
        pool::run_blocks(pieces, |piece: P| fold(piece.into_seq()))
    }

    // ---------------------------------------------------------------- sources

    /// Parallel iterator over an integer range.
    #[derive(Debug, Clone)]
    pub struct RangePar<T> {
        start: T,
        end: T,
    }

    macro_rules! impl_range_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = RangePar<$t>;
                fn into_par_iter(self) -> RangePar<$t> {
                    RangePar { start: self.start, end: self.end }
                }
            }

            impl ParallelIterator for RangePar<$t> {
                type Item = $t;
                type Seq = std::ops::Range<$t>;
                fn units(&self) -> usize {
                    (self.end.max(self.start) - self.start) as usize
                }
                fn split_at(self, at: usize) -> (Self, Self) {
                    let mid = self.start + at as $t;
                    debug_assert!(mid <= self.end);
                    (
                        RangePar { start: self.start, end: mid },
                        RangePar { start: mid, end: self.end },
                    )
                }
                fn into_seq(self) -> Self::Seq {
                    self.start..self.end
                }
            }

            impl IndexedParallelIterator for RangePar<$t> {}
        )*};
    }
    impl_range_par!(usize, u32, u64);

    /// Parallel iterator over an owned `Vec`.
    #[derive(Debug)]
    pub struct VecPar<T> {
        vec: Vec<T>,
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecPar<T>;
        fn into_par_iter(self) -> VecPar<T> {
            VecPar { vec: self }
        }
    }

    impl<T: Send> ParallelIterator for VecPar<T> {
        type Item = T;
        type Seq = std::vec::IntoIter<T>;
        fn units(&self) -> usize {
            self.vec.len()
        }
        fn split_at(mut self, at: usize) -> (Self, Self) {
            let right = self.vec.split_off(at);
            (self, VecPar { vec: right })
        }
        fn into_seq(self) -> Self::Seq {
            self.vec.into_iter()
        }
    }

    impl<T: Send> IndexedParallelIterator for VecPar<T> {}

    /// Parallel iterator over `&[T]`.
    #[derive(Debug)]
    pub struct SlicePar<'a, T> {
        slice: &'a [T],
    }

    impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
        type Item = &'a T;
        type Seq = std::slice::Iter<'a, T>;
        fn units(&self) -> usize {
            self.slice.len()
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let (l, r) = self.slice.split_at(at);
            (SlicePar { slice: l }, SlicePar { slice: r })
        }
        fn into_seq(self) -> Self::Seq {
            self.slice.iter()
        }
    }

    impl<T: Sync> IndexedParallelIterator for SlicePar<'_, T> {}

    /// Parallel iterator over `&mut [T]`.
    #[derive(Debug)]
    pub struct SliceParMut<'a, T> {
        slice: &'a mut [T],
    }

    impl<'a, T: Send> ParallelIterator for SliceParMut<'a, T> {
        type Item = &'a mut T;
        type Seq = std::slice::IterMut<'a, T>;
        fn units(&self) -> usize {
            self.slice.len()
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let (l, r) = self.slice.split_at_mut(at);
            (SliceParMut { slice: l }, SliceParMut { slice: r })
        }
        fn into_seq(self) -> Self::Seq {
            self.slice.iter_mut()
        }
    }

    impl<T: Send> IndexedParallelIterator for SliceParMut<'_, T> {}

    /// Parallel iterator over contiguous shared chunks of a slice.
    #[derive(Debug)]
    pub struct ChunksPar<'a, T> {
        slice: &'a [T],
        size: usize,
    }

    impl<'a, T: Sync> ParallelIterator for ChunksPar<'a, T> {
        type Item = &'a [T];
        type Seq = std::slice::Chunks<'a, T>;
        fn units(&self) -> usize {
            self.slice.len().div_ceil(self.size)
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let mid = (at * self.size).min(self.slice.len());
            let (l, r) = self.slice.split_at(mid);
            (
                ChunksPar {
                    slice: l,
                    size: self.size,
                },
                ChunksPar {
                    slice: r,
                    size: self.size,
                },
            )
        }
        fn into_seq(self) -> Self::Seq {
            self.slice.chunks(self.size)
        }
    }

    impl<T: Sync> IndexedParallelIterator for ChunksPar<'_, T> {}

    /// Parallel iterator over contiguous mutable chunks of a slice.
    #[derive(Debug)]
    pub struct ChunksParMut<'a, T> {
        slice: &'a mut [T],
        size: usize,
    }

    impl<'a, T: Send> ParallelIterator for ChunksParMut<'a, T> {
        type Item = &'a mut [T];
        type Seq = std::slice::ChunksMut<'a, T>;
        fn units(&self) -> usize {
            self.slice.len().div_ceil(self.size)
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let mid = (at * self.size).min(self.slice.len());
            let (l, r) = self.slice.split_at_mut(mid);
            (
                ChunksParMut {
                    slice: l,
                    size: self.size,
                },
                ChunksParMut {
                    slice: r,
                    size: self.size,
                },
            )
        }
        fn into_seq(self) -> Self::Seq {
            self.slice.chunks_mut(self.size)
        }
    }

    impl<T: Send> IndexedParallelIterator for ChunksParMut<'_, T> {}

    /// `par_iter` / `par_chunks` over shared slices.
    pub trait ParallelSlice<T: Sync> {
        fn par_iter(&self) -> SlicePar<'_, T>;
        fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> SlicePar<'_, T> {
            SlicePar { slice: self }
        }
        fn par_chunks(&self, chunk_size: usize) -> ChunksPar<'_, T> {
            assert!(chunk_size != 0, "par_chunks: chunk size must be non-zero");
            ChunksPar {
                slice: self,
                size: chunk_size,
            }
        }
    }

    /// `par_iter_mut` / `par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        fn par_iter_mut(&mut self) -> SliceParMut<'_, T>;
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> SliceParMut<'_, T> {
            SliceParMut { slice: self }
        }
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksParMut<'_, T> {
            assert!(
                chunk_size != 0,
                "par_chunks_mut: chunk size must be non-zero"
            );
            ChunksParMut {
                slice: self,
                size: chunk_size,
            }
        }
    }

    // --------------------------------------------------------------- adapters

    /// `map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync + Clone,
    {
        type Item = R;
        type Seq = std::iter::Map<P::Seq, F>;
        fn units(&self) -> usize {
            self.base.units()
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(at);
            (
                Map {
                    base: l,
                    f: self.f.clone(),
                },
                Map { base: r, f: self.f },
            )
        }
        fn into_seq(self) -> Self::Seq {
            self.base.into_seq().map(self.f)
        }
        fn min_len_hint(&self) -> usize {
            self.base.min_len_hint()
        }
    }

    impl<P, R, F> IndexedParallelIterator for Map<P, F>
    where
        P: IndexedParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Send + Sync + Clone,
    {
    }

    /// `enumerate` adapter; tracks its global offset through splits.
    #[derive(Debug, Clone)]
    pub struct Enumerate<P> {
        base: P,
        offset: usize,
    }

    impl<P> ParallelIterator for Enumerate<P>
    where
        P: IndexedParallelIterator,
    {
        type Item = (usize, P::Item);
        type Seq = std::iter::Zip<std::ops::RangeFrom<usize>, P::Seq>;
        fn units(&self) -> usize {
            self.base.units()
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(at);
            (
                Enumerate {
                    base: l,
                    offset: self.offset,
                },
                Enumerate {
                    base: r,
                    offset: self.offset + at,
                },
            )
        }
        fn into_seq(self) -> Self::Seq {
            (self.offset..).zip(self.base.into_seq())
        }
        fn min_len_hint(&self) -> usize {
            self.base.min_len_hint()
        }
    }

    impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {}

    /// `flat_map_iter` adapter: splits on *input* units; output lengths may vary per
    /// input item, so the result is not indexed.
    #[derive(Debug, Clone)]
    pub struct FlatMapIter<P, F> {
        base: P,
        f: F,
    }

    impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
    where
        P: ParallelIterator,
        U: IntoIterator,
        U::Item: Send,
        F: Fn(P::Item) -> U + Send + Sync + Clone,
    {
        type Item = U::Item;
        type Seq = std::iter::FlatMap<P::Seq, U, F>;
        fn units(&self) -> usize {
            self.base.units()
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(at);
            (
                FlatMapIter {
                    base: l,
                    f: self.f.clone(),
                },
                FlatMapIter { base: r, f: self.f },
            )
        }
        fn into_seq(self) -> Self::Seq {
            self.base.into_seq().flat_map(self.f)
        }
        fn min_len_hint(&self) -> usize {
            self.base.min_len_hint()
        }
    }

    /// `with_min_len` adapter: raises the minimum block granularity.
    #[derive(Debug, Clone)]
    pub struct MinLen<P> {
        base: P,
        min: usize,
    }

    impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
        type Item = P::Item;
        type Seq = P::Seq;
        fn units(&self) -> usize {
            self.base.units()
        }
        fn split_at(self, at: usize) -> (Self, Self) {
            let (l, r) = self.base.split_at(at);
            (
                MinLen {
                    base: l,
                    min: self.min,
                },
                MinLen {
                    base: r,
                    min: self.min,
                },
            )
        }
        fn into_seq(self) -> Self::Seq {
            self.base.into_seq()
        }
        fn min_len_hint(&self) -> usize {
            self.base.min_len_hint().max(self.min)
        }
    }

    impl<P: IndexedParallelIterator> IndexedParallelIterator for MinLen<P> {}
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude::*`.
    pub use crate::iter::{
        FromParallelIterator, IndexedParallelIterator, IntoParallelIterator, ParallelIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn range_into_par_iter_collects_in_order() {
        let squares: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
        // Large enough to span many blocks and threads.
        let n = 10_000usize;
        let v: Vec<usize> = (0..n).into_par_iter().map(|i| i * 3).collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
    }

    #[test]
    fn par_chunks_mut_enumerate_for_each() {
        let mut data = vec![0f32; 6];
        data.par_chunks_mut(2).enumerate().for_each(|(i, chunk)| {
            for v in chunk {
                *v = i as f32;
            }
        });
        assert_eq!(data, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_across_threads() {
        // 1000 chunks of 3: enumerate indices must land on the right chunks no matter
        // which worker executes which block.
        let mut data = vec![0u32; 3000];
        crate::with_num_threads(8, || {
            data.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v = i as u32;
                }
            });
        });
        for (i, c) in data.chunks(3).enumerate() {
            assert!(c.iter().all(|&x| x == i as u32), "chunk {i} got {c:?}");
        }
    }

    #[test]
    fn flat_map_iter_flattens_in_order() {
        let out: Vec<usize> = (0..3usize)
            .into_par_iter()
            .flat_map_iter(|i| vec![i, i])
            .collect();
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2]);
        let big: Vec<usize> = (0..500usize)
            .into_par_iter()
            .flat_map_iter(|i| (0..i % 4).map(move |j| i * 10 + j))
            .collect();
        let seq: Vec<usize> = (0..500usize)
            .flat_map(|i| (0..i % 4).map(move |j| i * 10 + j))
            .collect();
        assert_eq!(big, seq);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = crate::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            crate::with_num_threads(4, || crate::join(|| 1, || panic!("right side")))
        });
        let payload = r.expect_err("join should propagate the panic");
        let msg = payload.downcast_ref::<&str>().expect("str payload");
        assert_eq!(*msg, "right side");
    }

    #[test]
    fn current_num_threads_reports_pool_size() {
        // The global size must be at least 1 and reflect USP_NUM_THREADS when set.
        let n = crate::current_num_threads();
        assert!(n >= 1);
        if let Ok(env) = std::env::var("USP_NUM_THREADS") {
            if let Ok(expect) = env.trim().parse::<usize>() {
                if expect >= 1 {
                    assert_eq!(n, expect);
                }
            }
        }
        // And the per-thread override wins over the global value.
        assert_eq!(crate::with_num_threads(3, crate::current_num_threads), 3);
        assert_eq!(crate::with_num_threads(0, crate::current_num_threads), n);
    }

    #[test]
    fn resolve_pool_size_prefers_valid_env() {
        use crate::pool::resolve_pool_size;
        assert_eq!(resolve_pool_size(Some("4"), 8), 4);
        assert_eq!(resolve_pool_size(Some(" 2 "), 8), 2);
        assert_eq!(resolve_pool_size(Some("0"), 8), 8); // invalid: fall back
        assert_eq!(resolve_pool_size(Some("nope"), 8), 8);
        assert_eq!(resolve_pool_size(None, 8), 8);
        assert_eq!(resolve_pool_size(None, 0), 1); // never report an empty pool
    }

    #[test]
    fn results_are_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            crate::with_num_threads(threads, || {
                let v: Vec<f64> = (0..997usize)
                    .into_par_iter()
                    .map(|i| (i as f64).sqrt().sin())
                    .collect();
                let s: f64 = (0..997usize)
                    .into_par_iter()
                    .map(|i| 1.0f64 / (i as f64 + 1.0))
                    .sum();
                (v, s)
            })
        };
        let (v1, s1) = run(1);
        for threads in [2, 3, 8] {
            let (v, s) = run(threads);
            assert_eq!(v1, v, "collect differs at {threads} threads");
            assert_eq!(
                s1.to_bits(),
                s.to_bits(),
                "sum differs at {threads} threads"
            );
        }
    }

    #[test]
    fn panic_in_parallel_region_propagates_payload() {
        let r = std::panic::catch_unwind(|| {
            crate::with_num_threads(4, || {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("boom {i}");
                    }
                });
            })
        });
        let payload = r.expect_err("for_each should propagate the panic");
        let msg = payload.downcast_ref::<String>().expect("String payload");
        assert_eq!(msg, "boom 37");
    }

    #[test]
    fn nested_parallel_regions_execute_inline() {
        // A nested region inside a worker must not deadlock or explode the thread
        // count, and must produce ordered results.
        let out: Vec<Vec<usize>> = crate::with_num_threads(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|i| (0..4usize).into_par_iter().map(|j| i * 10 + j).collect())
                .collect()
        });
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &vec![i * 10, i * 10 + 1, i * 10 + 2, i * 10 + 3]);
        }
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let v: Vec<usize> = (0..0usize).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let s: f64 = (0..0usize).into_par_iter().map(|i| i as f64).sum();
        assert_eq!(s, 0.0);
        let mut empty: Vec<f32> = Vec::new();
        empty
            .par_chunks_mut(4)
            .for_each(|c| panic!("unreachable {c:?}"));
    }

    #[test]
    fn vec_and_slice_sources_work() {
        let v = vec![5usize, 6, 7, 8];
        let doubled: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![10, 12, 14, 16]);
        let summed: usize = v.par_iter().map(|&x| x).sum();
        assert_eq!(summed, 26);
        let chunk_sums: Vec<usize> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(chunk_sums, vec![18, 8]);
        let mut m = vec![1i64, 2, 3];
        m.par_iter_mut().for_each(|x| *x = -*x);
        assert_eq!(m, vec![-1, -2, -3]);
    }

    #[test]
    fn count_and_reduce_match_sequential() {
        let c = (0..1234usize).into_par_iter().count();
        assert_eq!(c, 1234);
        let m = (0..1000usize)
            .into_par_iter()
            .map(|i| (i * 7919) % 1000)
            .reduce(|| 0, usize::max);
        assert_eq!(
            m,
            (0..1000usize)
                .map(|i| (i * 7919) % 1000)
                .fold(0, usize::max)
        );
    }

    #[test]
    fn parallel_regions_use_multiple_os_threads() {
        // Guards against a silent regression to sequential execution (which every
        // determinism test would trivially pass): no block may finish until two
        // distinct OS threads have entered the region, so a sequential executor fails
        // the rendezvous. The wait is bounded — a regression surfaces as this test's
        // own panic within seconds, not a hung suite.
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        use std::time::{Duration, Instant};
        let arrived = AtomicUsize::new(0);
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        crate::with_num_threads(4, || {
            (0..4usize).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // ordering: SeqCst test barrier — only the counter value matters,
                // but SeqCst keeps the fixture trivially free of ordering doubt.
                arrived.fetch_add(1, Ordering::SeqCst);
                let deadline = Instant::now() + Duration::from_secs(10);
                // ordering: SeqCst — see the barrier note above.
                while arrived.load(Ordering::SeqCst) < 2 {
                    assert!(
                        Instant::now() < deadline,
                        "no second worker thread arrived within 10s — executor ran sequentially"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        });
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct >= 2,
            "expected >= 2 worker threads, saw {distinct} — executor ran sequentially"
        );
    }

    #[test]
    fn workers_inherit_the_pool_size_override() {
        // current_num_threads() must report the same value inside every block of a
        // region, whether the block runs on the caller or on a spawned worker.
        let seen: Vec<usize> = crate::with_num_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|_| crate::current_num_threads())
                .collect()
        });
        assert!(
            seen.iter().all(|&n| n == 4),
            "blocks saw inconsistent pool sizes: {seen:?}"
        );
    }

    #[test]
    fn with_min_len_preserves_results() {
        let a: Vec<usize> = (0..100usize)
            .into_par_iter()
            .with_min_len(32)
            .map(|i| i)
            .collect();
        let b: Vec<usize> = (0..100usize).into_par_iter().map(|i| i).collect();
        assert_eq!(a, b);
    }

    /// Runs one parallel region that refuses to finish until `required` distinct OS
    /// threads have entered it (bounded wait), and returns the set of participating
    /// thread ids.
    fn barrier_region(required: usize) -> std::collections::HashSet<std::thread::ThreadId> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        use std::time::{Duration, Instant};
        let arrived = AtomicUsize::new(0);
        let ids: Mutex<std::collections::HashSet<std::thread::ThreadId>> =
            Mutex::new(std::collections::HashSet::new());
        (0..4usize).into_par_iter().for_each(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // ordering: SeqCst test barrier — only the counter value matters,
            // but SeqCst keeps the fixture trivially free of ordering doubt.
            arrived.fetch_add(1, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(10);
            // ordering: SeqCst — see the barrier note above.
            while arrived.load(Ordering::SeqCst) < required {
                assert!(
                    Instant::now() < deadline,
                    "pool failed to provide {required} concurrent threads within 10s"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        ids.into_inner().unwrap()
    }

    #[test]
    fn pool_reuses_os_threads_across_regions() {
        // The whole point of the persistent pool: helper threads survive between
        // regions. 20 regions, each forced (via a 2-thread rendezvous) to use at least
        // one non-caller thread, must together touch only the pool's fixed worker set —
        // a spawn-per-region executor would mint >= 20 distinct helper ids (ThreadId is
        // never reused within a process).
        let caller = std::thread::current().id();
        let mut helper_ids = std::collections::HashSet::new();
        crate::with_num_threads(4, || {
            for _ in 0..20 {
                for id in barrier_region(2) {
                    if id != caller {
                        helper_ids.insert(id);
                    }
                }
            }
        });
        assert!(
            !helper_ids.is_empty(),
            "no pool worker ever participated in a region"
        );
        assert!(
            helper_ids.len() <= 12,
            "saw {} distinct helper threads across 20 regions — workers are not being \
             reused (spawn-per-region executor?)",
            helper_ids.len()
        );
    }

    #[test]
    fn with_num_threads_bounds_helpers_in_pooled_regions() {
        // Grow the pool well past 2 workers first...
        crate::with_num_threads(8, || {
            (0..64usize).into_par_iter().for_each(|_| {});
        });
        // ...then check a 2-thread region never borrows the extra workers: the job
        // queue gets exactly one helper ticket, so at most caller + 1 worker
        // participate even though more workers sit idle.
        let ids: std::collections::HashSet<_> = crate::with_num_threads(2, || {
            let seen: Vec<std::thread::ThreadId> = (0..64usize)
                .into_par_iter()
                .map(|_| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    std::thread::current().id()
                })
                .collect();
            seen.into_iter().collect()
        });
        assert!(
            ids.len() <= 2,
            "override of 2 threads admitted {} distinct threads",
            ids.len()
        );
    }

    #[test]
    fn panic_on_a_pool_worker_thread_propagates() {
        // Force >= 2 threads into the region, then panic from whichever participant is
        // NOT the submitting thread: the payload must still surface on the submitter.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::time::{Duration, Instant};
        let caller = std::thread::current().id();
        let arrived = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            crate::with_num_threads(4, || {
                (0..4usize).into_par_iter().for_each(|_| {
                    // ordering: SeqCst test barrier — only the counter value
                    // matters; SeqCst keeps the fixture free of ordering doubt.
                    arrived.fetch_add(1, Ordering::SeqCst);
                    let deadline = Instant::now() + Duration::from_secs(10);
                    // ordering: SeqCst — see the barrier note above.
                    while arrived.load(Ordering::SeqCst) < 2 {
                        assert!(Instant::now() < deadline, "no second thread arrived");
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    if std::thread::current().id() != caller {
                        panic!("worker boom");
                    }
                });
            })
        }));
        let payload = r.expect_err("worker panic should propagate to the submitter");
        let msg = payload.downcast_ref::<&str>().expect("str payload");
        assert_eq!(*msg, "worker boom");
    }

    #[test]
    fn shutdown_pool_joins_workers_and_respawns_lazily() {
        // A parallel region, a full shutdown, then another region that must again run
        // on >= 2 distinct OS threads (i.e. the pool respawned workers after reset).
        crate::with_num_threads(4, || {
            let v: Vec<usize> = (0..500usize).into_par_iter().map(|i| i * 2).collect();
            assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
        });
        crate::shutdown_pool();
        let distinct = crate::with_num_threads(4, || barrier_region(2).len());
        assert!(
            distinct >= 2,
            "pool did not respawn workers after shutdown (saw {distinct} threads)"
        );
    }
}
