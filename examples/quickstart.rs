//! Quickstart: train an unsupervised space partition on a synthetic clustered dataset and
//! answer approximate nearest-neighbour queries with it.
//!
//! Run with: `cargo run --release --example quickstart`

use neural_partitioner::core::{train_partitioner, UspConfig};
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_linalg::Distance;

fn main() {
    // 1. A clustered dataset standing in for an ANN benchmark, with held-out queries.
    let split = synthetic::sift_like(5_200, 32, 42).split_queries(200);
    let data = split.base.points();
    println!(
        "dataset: {} base points, {} queries, {} dims",
        split.n_base(),
        split.n_queries(),
        split.dim()
    );

    // 2. Offline phase (Algorithm 1): the k'-NN matrix is the only preprocessing, then the
    //    model learns the partition with the unsupervised loss.
    let knn = KnnMatrix::build(data, 10, Distance::SquaredEuclidean);
    let config = UspConfig {
        epochs: 40,
        ..UspConfig::paper_default(16)
    };
    let trained = train_partitioner(data, &knn, &config, None);
    println!(
        "trained {} parameters in {:.1}s; final loss {:.3}",
        trained.report().parameters,
        trained.report().seconds,
        trained.report().epoch_loss.last().unwrap()
    );

    // 3. Build the lookup-table index and inspect the partition balance.
    let index = trained.build_index(data, Distance::SquaredEuclidean);
    let balance = index.balance();
    println!(
        "partition: {} bins, sizes {}..{} (imbalance {:.2})",
        balance.bins, balance.min, balance.max, balance.imbalance
    );

    // 4. Online phase (Algorithm 2): probe the most probable bins and re-rank candidates.
    let truth = exact_knn(data, &split.queries, 10, Distance::SquaredEuclidean);
    for probes in [1usize, 2, 4] {
        let mut recall = 0.0;
        let mut candidates = 0usize;
        for qi in 0..split.queries.rows() {
            let res = index.search(split.queries.row(qi), 10, probes);
            candidates += res.candidates_scanned;
            recall += usp_data::ground_truth::knn_accuracy(&res.ids, &truth[qi]);
        }
        let n = split.queries.rows() as f64;
        println!(
            "probes={probes}: 10-NN accuracy {:.3} scanning {:.0} candidates/query ({:.1}% of the dataset)",
            recall / n,
            candidates as f64 / n,
            100.0 * candidates as f64 / n / data.rows() as f64
        );
    }
}
