//! Using the unsupervised partitioner as a clustering method (§5.5 / Table 5): compare it
//! against DBSCAN, K-means and spectral clustering on the classic 2-D toy datasets and
//! print an ASCII rendering of the learned clusters.
//!
//! Run with: `cargo run --release --example clustering_2d`

use neural_partitioner::core::{train_partitioner, ModelKind, UspConfig};
use usp_cluster::{adjusted_rand_index, dbscan, spectral_clustering, DbscanConfig, SpectralConfig};
use usp_data::{synthetic, Dataset, KnnMatrix};
use usp_linalg::Distance;
use usp_quant::{KMeans, KMeansConfig};

fn usp_cluster_labels(ds: &Dataset, k: usize) -> Vec<isize> {
    let knn = KnnMatrix::build(ds.points(), 10, Distance::SquaredEuclidean);
    let cfg = UspConfig {
        bins: k,
        knn_k: 10,
        eta: 2.0,
        epochs: 60,
        batch_size: 128,
        learning_rate: 5e-3,
        model: ModelKind::Mlp {
            hidden: vec![32],
            dropout: 0.0,
        },
        soft_targets: true,
        seed: 3,
    };
    let trained = train_partitioner(ds.points(), &knn, &cfg, None);
    trained
        .model()
        .assign_batch(ds.points())
        .iter()
        .map(|&l| l as isize)
        .collect()
}

/// Renders a coarse ASCII scatter plot of a 2-D dataset coloured by cluster label.
fn ascii_plot(ds: &Dataset, labels: &[isize]) -> String {
    const W: usize = 64;
    const H: usize = 22;
    let xs: Vec<f32> = (0..ds.len()).map(|i| ds.point(i)[0]).collect();
    let ys: Vec<f32> = (0..ds.len()).map(|i| ds.point(i)[1]).collect();
    let (xmin, xmax) = (
        xs.iter().cloned().fold(f32::MAX, f32::min),
        xs.iter().cloned().fold(f32::MIN, f32::max),
    );
    let (ymin, ymax) = (
        ys.iter().cloned().fold(f32::MAX, f32::min),
        ys.iter().cloned().fold(f32::MIN, f32::max),
    );
    let mut grid = vec![vec![' '; W]; H];
    let glyphs = ['o', '+', 'x', '#', '*', '@'];
    for i in 0..ds.len() {
        let cx = (((xs[i] - xmin) / (xmax - xmin + 1e-9)) * (W as f32 - 1.0)) as usize;
        let cy = (((ys[i] - ymin) / (ymax - ymin + 1e-9)) * (H as f32 - 1.0)) as usize;
        let glyph = if labels[i] < 0 {
            '.'
        } else {
            glyphs[labels[i] as usize % glyphs.len()]
        };
        grid[H - 1 - cy][cx] = glyph;
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    let datasets: Vec<(&str, Dataset, usize, DbscanConfig)> = vec![
        (
            "moons",
            synthetic::moons(400, 0.05, 7),
            2,
            DbscanConfig::new(0.2, 4),
        ),
        (
            "circles",
            synthetic::circles(400, 0.04, 0.45, 8),
            2,
            DbscanConfig::new(0.2, 4),
        ),
        (
            "4 blobs (make_classification-like)",
            synthetic::blobs(400, 2, 4, 1.0, 9),
            4,
            DbscanConfig::new(0.8, 4),
        ),
    ];

    for (name, ds, k, db_cfg) in datasets {
        let truth = ds.labels().unwrap().to_vec();
        println!("==================== {name} ====================");

        let ours = usp_cluster_labels(&ds, k);
        println!(
            "Our approach (ARI {:.2}):",
            adjusted_rand_index(&ours, &truth)
        );
        println!("{}\n", ascii_plot(&ds, &ours));

        let db = dbscan(ds.points(), &db_cfg);
        let km: Vec<isize> = KMeans::fit(ds.points(), &KMeansConfig::new(k))
            .assign_all(ds.points())
            .iter()
            .map(|&l| l as isize)
            .collect();
        let sp: Vec<isize> = spectral_clustering(ds.points(), &SpectralConfig::new(k))
            .iter()
            .map(|&l| l as isize)
            .collect();
        println!(
            "ARI — ours {:.2} | DBSCAN {:.2} | K-means {:.2} | spectral {:.2}\n",
            adjusted_rand_index(&ours, &truth),
            adjusted_rand_index(&db, &truth),
            adjusted_rand_index(&km, &truth),
            adjusted_rand_index(&sp, &truth),
        );
    }
}
