//! End-to-end ANNS pipelines (§5.4.3 / Figure 7): compose the unsupervised partitioner
//! with ScaNN-style anisotropic quantization and compare against K-means + ScaNN, vanilla
//! ScaNN, HNSW and an IVF (FAISS-like) index on recall and measured query time.
//!
//! Run with: `cargo run --release --example scann_pipeline`

use neural_partitioner::core::{train_partitioner, PartitionedScann, UspConfig};
use usp_baselines::KMeansPartitioner;
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_graph::{Hnsw, HnswConfig};
use usp_index::AnnSearcher;
use usp_linalg::Distance;
use usp_quant::{IvfConfig, IvfIndex, ScannConfig, ScannSearcher};

const DIST: Distance = Distance::SquaredEuclidean;
const K: usize = 10;

fn measure(
    name: &str,
    queries: &usp_linalg::Matrix,
    truth: &[Vec<usize>],
    mut search: impl FnMut(&[f32]) -> Vec<usize>,
) {
    let start = std::time::Instant::now();
    let mut recall = 0.0;
    for qi in 0..queries.rows() {
        let ids = search(queries.row(qi));
        recall += usp_data::ground_truth::knn_accuracy(&ids, &truth[qi]);
    }
    let n = queries.rows() as f64;
    println!(
        "{:<28} recall@10 = {:.3}   mean query time = {:>7.1} µs",
        name,
        recall / n,
        start.elapsed().as_micros() as f64 / n
    );
}

fn main() {
    let split = synthetic::sift_like(8_300, 32, 55).split_queries(300);
    let data = split.base.points();
    let truth = exact_knn(data, &split.queries, K, DIST);
    println!(
        "workload: {} points x {} dims, {} queries\n",
        data.rows(),
        data.cols(),
        split.n_queries()
    );

    // USP + ScaNN: partition first, then quantized search inside the candidate set.
    let knn = KnnMatrix::build(data, 10, DIST);
    let usp = train_partitioner(
        data,
        &knn,
        &UspConfig {
            epochs: 40,
            ..UspConfig::paper_default(16)
        },
        None,
    );
    let usp_scann = PartitionedScann::build(
        usp,
        data,
        ScannConfig {
            rerank_size: 80,
            ..ScannConfig::default()
        },
        2,
    );
    measure("USP + ScaNN (ours)", &split.queries, &truth, |q| {
        usp_scann.search(q, K).ids
    });

    // K-means + ScaNN.
    let km_scann = PartitionedScann::build(
        KMeansPartitioner::fit(data, 16, 3),
        data,
        ScannConfig {
            rerank_size: 80,
            ..ScannConfig::default()
        },
        2,
    );
    measure("K-means + ScaNN", &split.queries, &truth, |q| {
        km_scann.search(q, K).ids
    });

    // Vanilla ScaNN: quantized scan of the whole dataset.
    let scann = ScannSearcher::build(
        data,
        ScannConfig {
            rerank_size: 80,
            ..ScannConfig::default()
        },
    );
    measure("Vanilla ScaNN", &split.queries, &truth, |q| {
        scann.search_all(q, K).ids
    });

    // HNSW.
    let hnsw = Hnsw::build(
        data,
        HnswConfig {
            m: 16,
            ef_construction: 100,
            distance: DIST,
            seed: 3,
        },
    );
    measure("HNSW (ef=64)", &split.queries, &truth, |q| {
        hnsw.search(q, K, 64).0
    });

    // IVF-Flat (FAISS-like).
    let ivf = IvfIndex::build(data, IvfConfig::new(16).with_nprobe(2));
    measure("FAISS-like IVF (nprobe=2)", &split.queries, &truth, |q| {
        ivf.search(q, K).ids
    });

    println!(
        "\n(The partition + quantization pipelines answer queries from a small candidate set;"
    );
    println!(
        " the unsupervised partition needs fewer candidates than K-means for the same recall.)"
    );
}
