//! ANN-benchmark style comparison on a SIFT-like workload: the unsupervised partitioner
//! (with and without ensembling) against K-means and cross-polytope LSH, reporting the
//! recall / candidate-set-size trade-off of Figure 5.
//!
//! Run with: `cargo run --release --example ann_search`

use neural_partitioner::core::{UspConfig, UspEnsemble};
use usp_baselines::{CrossPolytopeLsh, KMeansPartitioner};
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_index::PartitionIndex;
use usp_linalg::Distance;

const DIST: Distance = Distance::SquaredEuclidean;
const BINS: usize = 16;
const K: usize = 10;

fn main() {
    let split = synthetic::sift_like(6_300, 32, 7).split_queries(300);
    let data = split.base.points();
    let queries = &split.queries;
    let truth = exact_knn(data, queries, K, DIST);
    println!(
        "SIFT-like workload: {} points, {} dims, {} queries, {} bins\n",
        data.rows(),
        data.cols(),
        queries.rows(),
        BINS
    );

    // The paper's offline phase: k'-NN matrix once, then train the ensemble.
    let knn = KnnMatrix::build(data, 10, DIST);
    let cfg = UspConfig {
        epochs: 40,
        ..UspConfig::paper_default(BINS)
    };
    let ensemble = UspEnsemble::train(data, &knn, &cfg, 3, DIST);

    // Baselines.
    let kmeans = PartitionIndex::build(KMeansPartitioner::fit(data, BINS, 3), data, DIST);
    let lsh = PartitionIndex::build(CrossPolytopeLsh::fit(data, BINS, 4), data, DIST);

    println!(
        "{:<24} {:>7} {:>12} {:>9}",
        "method", "probes", "candidates", "recall@10"
    );
    for probes in [1usize, 2, 4, 8] {
        let eval = |name: &str, search: &mut dyn FnMut(&[f32]) -> usp_index::SearchResult| {
            let mut recall = 0.0;
            let mut cand = 0usize;
            for qi in 0..queries.rows() {
                let res = search(queries.row(qi));
                cand += res.candidates_scanned;
                recall += usp_data::ground_truth::knn_accuracy(&res.ids, &truth[qi]);
            }
            let n = queries.rows() as f64;
            println!(
                "{:<24} {:>7} {:>12.0} {:>9.3}",
                name,
                probes,
                cand as f64 / n,
                recall / n
            );
        };
        eval("Ours (ensemble of 3)", &mut |q| {
            ensemble.search_with_probes(q, K, probes)
        });
        eval("K-means", &mut |q| kmeans.search(q, K, probes));
        eval("Cross-polytope LSH", &mut |q| lsh.search(q, K, probes));
        println!();
    }
    println!("(Up and to the left is better: high recall from few candidates.)");
}
