//! Hierarchical partitioning and ensembling (§4.4): recursively split the dataset
//! 16 × 16 = 256 ways with a tree of small models, and boost a flat partition with an
//! ensemble of three complementary models.
//!
//! Run with: `cargo run --release --example hierarchical_tree`

use neural_partitioner::core::{HierarchicalPartitioner, UspConfig, UspEnsemble};
use usp_data::{exact_knn, synthetic, KnnMatrix};
use usp_index::{PartitionIndex, Partitioner};
use usp_linalg::Distance;

const DIST: Distance = Distance::SquaredEuclidean;
const K: usize = 10;

fn main() {
    let split = synthetic::sift_like(6_200, 32, 99).split_queries(200);
    let data = split.base.points();
    let truth = exact_knn(data, &split.queries, K, DIST);
    let cfg = UspConfig {
        epochs: 30,
        ..UspConfig::paper_default(16)
    };

    // ---- Hierarchical 16 x 16 = 256 bins ----
    println!("training a 16 x 16 hierarchical partition...");
    let hier = HierarchicalPartitioner::train(data, &cfg, &[16, 16], DIST);
    println!(
        "  {} leaf bins, {} learnable parameters across the model tree",
        hier.num_bins(),
        hier.num_params()
    );
    let hier_index = PartitionIndex::build(hier, data, DIST);
    let balance = hier_index.balance();
    println!(
        "  leaf occupancy {}..{} (imbalance {:.2}, {} empty leaves)",
        balance.min, balance.max, balance.imbalance, balance.empty_bins
    );
    for probes in [1usize, 4, 16, 64] {
        let mut recall = 0.0;
        let mut cand = 0usize;
        for qi in 0..split.queries.rows() {
            let res = hier_index.search(split.queries.row(qi), K, probes);
            cand += res.candidates_scanned;
            recall += usp_data::ground_truth::knn_accuracy(&res.ids, &truth[qi]);
        }
        let n = split.queries.rows() as f64;
        println!(
            "  probes={probes:>3}: recall@10 {:.3} from {:>6.0} candidates/query",
            recall / n,
            cand as f64 / n
        );
    }

    // ---- Flat 16 bins, ensemble of 3 (Algorithm 3/4) ----
    println!("\ntraining a flat 16-bin partition with an ensemble of 3 models...");
    let knn = KnnMatrix::build(data, 10, DIST);
    let ensemble = UspEnsemble::train(data, &knn, &cfg, 3, DIST);
    for probes in [1usize, 2, 4] {
        let mut recall = 0.0;
        let mut cand = 0usize;
        for qi in 0..split.queries.rows() {
            let res = ensemble.search_with_probes(split.queries.row(qi), K, probes);
            cand += res.candidates_scanned;
            recall += usp_data::ground_truth::knn_accuracy(&res.ids, &truth[qi]);
        }
        let n = split.queries.rows() as f64;
        println!(
            "  probes={probes}: recall@10 {:.3} from {:>6.0} candidates/query (best-of-{} by confidence)",
            recall / n,
            cand as f64 / n,
            ensemble.len()
        );
    }
}
