//! # neural-partitioner
//!
//! A Rust reproduction of *Unsupervised Space Partitioning for Nearest Neighbor Search*
//! (Fahim, Ali & Cheema, EDBT 2023), plus every substrate its evaluation depends on.
//!
//! This umbrella crate re-exports the workspace crates under stable names so downstream
//! users (and the `examples/` and `tests/` in this repository) can depend on a single
//! package:
//!
//! * [`core`] — the paper's method: unsupervised loss, trainer, ensembling, hierarchical
//!   partitioning, and the partition + quantization pipeline;
//! * [`data`] — datasets, generators, IO, exact ground truth and the k′-NN matrix;
//! * [`index`] — the shared partitioning-index abstractions (lookup table, probing,
//!   re-ranking);
//! * [`nn`] — the minimal neural-network library the models are built from;
//! * [`baselines`] — K-means, LSH families, partition trees, Neural LSH, Boosted Search
//!   Forest;
//! * [`graph`] — k-NN graphs, balanced graph partitioning, HNSW;
//! * [`quant`] — product/anisotropic quantization, ScaNN-like search, IVF;
//! * [`cluster`] — DBSCAN, spectral clustering and clustering metrics;
//! * [`eval`] — the experiment harness reproducing every table and figure;
//! * [`serve`] — the batched query-serving engine (persistent-pool batch execution,
//!   micro-batching, per-request knobs, serving statistics) and its sharded
//!   scatter/gather variant (load-aware bin→shard maps, bit-identical answers);
//! * [`linalg`] — dense linear algebra primitives.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and the
//! substitutions made relative to the paper's original setup.

pub use usp_baselines as baselines;
pub use usp_cluster as cluster;
pub use usp_core as core;
pub use usp_data as data;
pub use usp_eval as eval;
pub use usp_graph as graph;
pub use usp_index as index;
pub use usp_linalg as linalg;
pub use usp_nn as nn;
pub use usp_quant as quant;
pub use usp_serve as serve;
